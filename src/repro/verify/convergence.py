"""Corrupted-initial-state convergence checking (self-stabilization, E16's twin).

The runtime half of the self-stabilization story injects
:class:`~repro.robustness.corruption.StateCorruption` into live endpoints
and watches the guard/repair hooks recover (see
:mod:`repro.robustness.corruption` and PROTOCOL.md §9).  This module is
the exhaustive half: it replays the same corruption model against the
*abstract* protocol of :mod:`repro.verify.actions` and proves, for small
windows, that every corrupted state the fault injector can produce is
driven back to a legitimate final state — Dolev-style convergence, but
checked by explicit-state search instead of sampled by simulation.

The method mirrors the runtime repair rules exactly:

1. enumerate every state reachable from the paper's initial state (the
   **origins** — corruption strikes a running system, not an arbitrary
   bit pattern; the in-flight payload/buffer stores survive);
2. corrupt each origin at the runtime model's sites — the sender's
   ``na`` cursor, its ``ackd`` record, the receiver's ``vr`` cursor and
   buffer — producing states that violate assertions 6 ∧ 7;
3. apply the **abstract repair rules**: the payload store acts as the
   witness ledger in both directions (a held payload proves its number
   unacknowledged, an absent one below the send horizon proves it
   acknowledged; a buffered payload proves its number received) —
   exactly :meth:`repro.core.window.SenderWindow.repair` in the small;
4. explore all executions from each repaired state under the fairness
   assumption (``allow_loss=False``) and require every terminal state to
   be the legitimate final state: no deadlock, no divergence.

Transient invariant violations during re-convergence are expected (a
demoted ``na`` makes ``ns <= na + w`` false until duplicate acks re-
advance it) and are counted, not flagged.  What must never happen is a
terminal state that is not final.

Run the checker from the command line (the CI ``verify`` job does)::

    python -m repro.verify.convergence --window 2 --max-send 3
"""

from __future__ import annotations

import argparse
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.verify.actions import TIMEOUT_MODES, AbstractProtocolModel
from repro.verify.invariants import check_invariant
from repro.verify.state import SystemState

__all__ = [
    "CorruptionScenario",
    "ConvergenceReport",
    "sender_witness",
    "receiver_witness",
    "repair_state",
    "corrupt_scenarios",
    "check_convergence",
    "main",
]


# ----------------------------------------------------------------------
# witnesses: what the payload stores prove about the truth
# ----------------------------------------------------------------------


def sender_witness(state: SystemState) -> frozenset:
    """Sequence numbers whose payloads the sender still holds.

    Every concrete sender releases a payload exactly when its number is
    acknowledged, so the held set *is* the unacknowledged set — the
    witness the runtime repair rules consult.  Cursor corruption never
    touches the store, so the witness is computed from the origin truth.
    """
    return frozenset(
        s for s in range(state.na, state.ns) if not state.is_ackd(s)
    )


def receiver_witness(state: SystemState) -> frozenset:
    """Sequence numbers whose payloads the receiver has buffered.

    The accepted run ``[nr, vr)`` plus the out-of-order ``rcvd`` entries:
    everything received but not yet taken by a block acknowledgment.
    """
    return frozenset(range(state.nr, state.vr)) | frozenset(state.rcvd)


# ----------------------------------------------------------------------
# the abstract repair rules (witness-authoritative, as at runtime)
# ----------------------------------------------------------------------


def repair_state(
    state: SystemState,
    window: int,
    unacked: frozenset,
    buffered: frozenset,
) -> Tuple[SystemState, List[str]]:
    """Apply the runtime guard/repair rules to an abstract state.

    ``unacked``/``buffered`` are the payload-store witnesses captured at
    the origin (corruption mutates cursors and records, never the
    stores).  The ledger is authoritative in both directions, exactly
    as in :meth:`repro.core.window.SenderWindow.repair`: a held payload
    proves sent-but-unacknowledged (demote — duplicate handling absorbs
    the spurious retransmissions), an absent payload for a number below
    the send horizon proves acknowledged (promote — without it a
    rewound ``na`` leaves "unacknowledged" numbers nothing can
    retransmit).
    """
    repairs: List[str] = []
    na, ns, ackd = state.na, state.ns, set(state.ackd)
    nr, vr, rcvd = state.nr, state.vr, set(state.rcvd)

    # -- sender: cursor and record rewritten from the payload ledger ----
    target = min(unacked) if unacked else ns
    if na != target:
        reason = (
            "held payload unacked" if na > target
            else "payloads below released at acknowledgment"
        )
        repairs.append(f"na {na} -> {target} ({reason})")
        na = target
    canonical = {s for s in range(na, ns) if s not in unacked}
    if ackd != canonical:
        repairs.append("ackd rebuilt from the payload ledger")
        ackd = canonical

    # -- receiver: the buffer witness bounds vr from above --------------
    if vr < nr:
        repairs.append(f"vr {vr} -> {nr} (cursor inversion)")
        vr = nr
    run_end = nr
    while run_end in buffered:
        run_end += 1
    if vr > run_end:
        repairs.append(f"vr {vr} -> {run_end} (no buffered payload)")
        vr = run_end
    true_rcvd = {s for s in buffered if s >= vr}
    if rcvd != true_rcvd:
        repairs.append("rcvd rebuilt from buffered payloads")
        rcvd = true_rcvd

    repaired = state.replace(
        na=na, ackd=frozenset(ackd), vr=vr, rcvd=frozenset(rcvd)
    )
    return repaired, repairs


# ----------------------------------------------------------------------
# the corruption model (mirrors repro.robustness.corruption's sites)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CorruptionScenario:
    """One corrupted-initial-state scenario: origin, mutation, repair."""

    origin: SystemState
    site: str
    detail: str
    corrupted: SystemState
    repaired: SystemState
    repairs: tuple


def corrupt_scenarios(
    state: SystemState, window: int, max_send: int
) -> Iterator[CorruptionScenario]:
    """All corruptions of ``state`` at the runtime injector's sites."""
    unacked = sender_witness(state)
    buffered = receiver_witness(state)

    def scenario(site: str, detail: str, corrupted: SystemState):
        repaired, repairs = repair_state(
            corrupted, window, unacked, buffered
        )
        return CorruptionScenario(
            origin=state,
            site=site,
            detail=detail,
            corrupted=corrupted,
            repaired=repaired,
            repairs=tuple(repairs),
        )

    # sender.window: bit-flip, randomized-in-domain extremes, worst-case
    na_variants = {state.na ^ 1, 0, state.ns, state.ns + window}
    for bad in sorted(na_variants - {state.na}):
        if bad < 0:
            continue
        yield scenario(
            "sender.window", f"na={bad}", state.replace(na=bad)
        )

    # sender.acks: every single-flag flip, all-set, all-clear
    for seq in range(state.na, state.ns):
        flipped = set(state.ackd) ^ {seq}
        yield scenario(
            "sender.acks",
            f"flip ackd[{seq}]",
            state.replace(ackd=frozenset(flipped)),
        )
    if state.ns > state.na:
        yield scenario(
            "sender.acks",
            "ackd all set",
            state.replace(ackd=frozenset(range(state.na, state.ns))),
        )
        if state.ackd:
            yield scenario(
                "sender.acks", "ackd wiped", state.replace(ackd=frozenset())
            )

    # receiver.window: vr jumps and a buffer wipe
    vr_variants = {state.vr ^ 1, state.nr, state.nr + window}
    for bad in sorted(vr_variants - {state.vr}):
        if bad < 0:
            continue
        yield scenario(
            "receiver.window", f"vr={bad}", state.replace(vr=bad)
        )
    if state.rcvd:
        yield scenario(
            "receiver.window",
            "buffers wiped",
            state.replace(rcvd=frozenset()),
        )


# ----------------------------------------------------------------------
# convergence checking
# ----------------------------------------------------------------------


@dataclass
class ConvergenceReport:
    """Outcome of one corrupted-initial-state convergence sweep."""

    window: int = 0
    max_send: int = 0
    timeout_mode: str = ""
    origins: int = 0
    scenarios: int = 0
    unique_repaired: int = 0
    states_explored: int = 0
    transient_violations: int = 0  # expected: re-convergence is not atomic
    diverged: List[Tuple[CorruptionScenario, SystemState]] = field(
        default_factory=list
    )
    truncated: bool = False

    @property
    def ok(self) -> bool:
        return not self.diverged and not self.truncated

    def summary(self) -> str:
        status = "OK" if self.ok else "FAILED"
        return (
            f"{status} [{self.timeout_mode}]: {self.origins} origins, "
            f"{self.scenarios} corruption scenarios, "
            f"{self.unique_repaired} unique repaired states, "
            f"{self.states_explored} states explored, "
            f"{self.transient_violations} transient violations, "
            f"{len(self.diverged)} divergences"
            + (" (truncated)" if self.truncated else "")
        )


def _reachable_states(
    model: AbstractProtocolModel, max_states: int
) -> Tuple[List[SystemState], bool]:
    """BFS enumeration of the clean model's reachable states."""
    start = model.initial()
    seen: Set[SystemState] = {start}
    frontier = deque([start])
    order: List[SystemState] = []
    truncated = False
    while frontier:
        if len(order) >= max_states:
            truncated = True
            break
        state = frontier.popleft()
        order.append(state)
        for transition in model.transitions(state):
            if transition.target not in seen:
                seen.add(transition.target)
                frontier.append(transition.target)
    return order, truncated


def check_convergence(
    window: int,
    max_send: int,
    timeout_mode: str = "per_message",
    max_states: int = 2_000_000,
) -> ConvergenceReport:
    """Prove every injectable corruption re-converges, exhaustively.

    Origins are enumerated under the full fault model (loss allowed);
    re-convergence runs under the paper's fairness assumption (no loss),
    matching the runtime watchdog's premise that repairs outpace fresh
    faults.  A scenario **diverges** when some execution from its
    repaired state reaches a terminal state that is not the legitimate
    final state (a deadlock, or a wedged configuration the repair rules
    missed).
    """
    report = ConvergenceReport(
        window=window, max_send=max_send, timeout_mode=timeout_mode
    )
    origin_model = AbstractProtocolModel(
        window, max_send, timeout_mode=timeout_mode, allow_loss=True
    )
    recovery_model = AbstractProtocolModel(
        window, max_send, timeout_mode=timeout_mode, allow_loss=False
    )

    origins, truncated = _reachable_states(origin_model, max_states)
    report.origins = len(origins)
    report.truncated = truncated

    # dedupe: many corruptions repair to the same state, and every state
    # visited by a successful convergence run is itself convergent
    pending: Dict[SystemState, CorruptionScenario] = {}
    for origin in origins:
        for scenario in corrupt_scenarios(origin, window, max_send):
            report.scenarios += 1
            if scenario.repaired not in pending:
                pending[scenario.repaired] = scenario
    report.unique_repaired = len(pending)

    verified: Set[SystemState] = set()
    violating_seen: Set[SystemState] = set()
    for repaired, scenario in pending.items():
        if repaired in verified:
            continue
        frontier = deque([repaired])
        visited: Set[SystemState] = {repaired}
        failed = False
        while frontier:
            if report.states_explored >= max_states:
                report.truncated = True
                break
            state = frontier.popleft()
            if state in verified:
                continue
            report.states_explored += 1
            if state not in violating_seen and check_invariant(
                state, window
            ):
                violating_seen.add(state)
                report.transient_violations += 1
            enabled = recovery_model.protocol_transitions(state)
            if not enabled:
                if not recovery_model.is_final(state):
                    report.diverged.append((scenario, state))
                    failed = True
                continue
            for transition in enabled:
                if transition.target not in visited:
                    visited.add(transition.target)
                    frontier.append(transition.target)
        if not failed and not report.truncated:
            verified |= visited
    return report


# ----------------------------------------------------------------------
# command-line entry point (the CI verify job)
# ----------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "exhaustively check convergence from corrupted initial states"
        )
    )
    parser.add_argument("--window", type=int, default=2)
    parser.add_argument("--max-send", type=int, default=3)
    parser.add_argument(
        "--timeout-mode",
        choices=TIMEOUT_MODES[:2] + ("both",),
        default="both",
        help="which timeout guard to check (default: both safe modes)",
    )
    parser.add_argument("--max-states", type=int, default=2_000_000)
    args = parser.parse_args(argv)

    modes = (
        ("simple", "per_message")
        if args.timeout_mode == "both"
        else (args.timeout_mode,)
    )
    ok = True
    for mode in modes:
        report = check_convergence(
            args.window,
            args.max_send,
            timeout_mode=mode,
            max_states=args.max_states,
        )
        print(report.summary())
        for scenario, terminal in report.diverged[:5]:
            print(
                f"  diverged: {scenario.site}[{scenario.detail}] from "
                f"{scenario.origin.describe()}"
            )
            print(f"    wedged at {terminal.describe()}")
        ok = ok and report.ok
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
