"""Explicit-state exploration of the abstract protocol (E8, E9).

:class:`Explorer` performs breadth-first search over every state reachable
from the initial state of an :class:`~repro.verify.actions.AbstractProtocolModel`,
checking the paper's invariant (assertions 6 ∧ 7 ∧ 8) at each state and
recording predecessor links so that any violation or deadlock comes with a
replayable witness trace.

:class:`RandomWalker` complements the exhaustive search with long
randomized fair executions used by the progress experiment (E9): it
verifies that the potential function ``na + ns + nr + vr`` (the paper's
progress measure) keeps increasing, and that all ``max_send`` messages are
eventually delivered and acknowledged despite losses.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.verify.actions import AbstractProtocolModel, Transition
from repro.verify.invariants import check_invariant
from repro.verify.state import SystemState

__all__ = ["Explorer", "ExplorationReport", "RandomWalker", "WalkReport"]


@dataclass
class ExplorationReport:
    """Outcome of one exhaustive state-space exploration."""

    states_explored: int = 0
    transitions_explored: int = 0
    final_states: int = 0
    invariant_violations: List[Tuple[SystemState, List[str]]] = field(
        default_factory=list
    )
    deadlocks: List[SystemState] = field(default_factory=list)
    truncated: bool = False  # hit max_states before exhausting the space
    max_channel_occupancy: int = 0

    @property
    def ok(self) -> bool:
        """True when no violation and no deadlock was found."""
        return not self.invariant_violations and not self.deadlocks

    def summary(self) -> str:
        status = "OK" if self.ok else "FAILED"
        return (
            f"{status}: {self.states_explored} states, "
            f"{self.transitions_explored} transitions, "
            f"{len(self.invariant_violations)} invariant violations, "
            f"{len(self.deadlocks)} deadlocks"
            + (" (truncated)" if self.truncated else "")
        )


class Explorer:
    """Breadth-first explicit-state model checker."""

    def __init__(
        self,
        model: AbstractProtocolModel,
        max_states: int = 2_000_000,
        stop_at_first_violation: bool = True,
    ) -> None:
        self.model = model
        self.max_states = max_states
        self.stop_at_first_violation = stop_at_first_violation
        self._parent: Dict[SystemState, Optional[Tuple[SystemState, Transition]]] = {}

    def run(self) -> ExplorationReport:
        """Explore all reachable states; return the report."""
        report = ExplorationReport()
        start = self.model.initial()
        frontier = deque([start])
        self._parent = {start: None}

        while frontier:
            if report.states_explored >= self.max_states:
                report.truncated = True
                break
            state = frontier.popleft()
            report.states_explored += 1
            report.max_channel_occupancy = max(
                report.max_channel_occupancy, len(state.c_sr) + len(state.c_rs)
            )

            clauses = check_invariant(state, self.model.window)
            if clauses:
                report.invariant_violations.append((state, clauses))
                if self.stop_at_first_violation:
                    return report
                continue  # don't expand corrupted states

            transitions = list(self.model.transitions(state))
            protocol_enabled = [t for t in transitions if not t.is_environment]
            if self.model.is_final(state):
                report.final_states += 1
            elif not protocol_enabled:
                report.deadlocks.append(state)
                if self.stop_at_first_violation:
                    return report

            for transition in transitions:
                report.transitions_explored += 1
                successor = transition.target
                if successor not in self._parent:
                    self._parent[successor] = (state, transition)
                    frontier.append(successor)
        return report

    def witness(self, state: SystemState) -> List[str]:
        """Replayable trace from the initial state to ``state``.

        Each line is ``action[detail]  =>  state description``.  Only valid
        for states discovered by the most recent :meth:`run`.
        """
        if state not in self._parent:
            raise KeyError("state was not reached in the last exploration")
        steps: List[str] = []
        cursor: Optional[SystemState] = state
        while cursor is not None:
            link = self._parent[cursor]
            if link is None:
                steps.append(f"initial  =>  {cursor.describe()}")
                break
            predecessor, transition = link
            steps.append(f"{transition}  =>  {cursor.describe()}")
            cursor = predecessor
        steps.reverse()
        return steps


@dataclass
class WalkReport:
    """Outcome of one randomized fair execution."""

    steps: int = 0
    losses_injected: int = 0
    completed: bool = False  # reached the final state
    invariant_violations: int = 0
    progress_sum_history: List[int] = field(default_factory=list)

    @property
    def final_progress_sum(self) -> int:
        return self.progress_sum_history[-1] if self.progress_sum_history else 0


class RandomWalker:
    """Randomized fair executions of the abstract model (E9).

    At each step a transition is chosen uniformly among the enabled
    protocol actions; independently, with probability ``loss_probability``
    and while the loss budget lasts, an environment loss is injected
    instead.  A bounded loss budget realises the paper's fairness
    assumption that "there are long periods of time during which no sent
    message is lost" — with it, every walk must reach the final state.
    """

    def __init__(
        self,
        model: AbstractProtocolModel,
        rng: random.Random,
        loss_probability: float = 0.1,
        loss_budget: int = 20,
        max_steps: int = 100_000,
    ) -> None:
        if not 0.0 <= loss_probability <= 1.0:
            raise ValueError(f"loss_probability must be in [0,1], got {loss_probability}")
        self.model = model
        self.rng = rng
        self.loss_probability = loss_probability
        self.loss_budget = loss_budget
        self.max_steps = max_steps

    def run(self) -> WalkReport:
        report = WalkReport()
        state = self.model.initial()
        losses_left = self.loss_budget

        for _ in range(self.max_steps):
            report.progress_sum_history.append(
                state.na + state.ns + state.nr + state.vr
            )
            if check_invariant(state, self.model.window):
                report.invariant_violations += 1
            if self.model.is_final(state):
                report.completed = True
                break

            transitions = list(self.model.transitions(state))
            protocol = [t for t in transitions if not t.is_environment]
            environment = [t for t in transitions if t.is_environment]
            choice: Optional[Transition] = None
            if (
                environment
                and losses_left > 0
                and self.rng.random() < self.loss_probability
            ):
                choice = self.rng.choice(environment)
                losses_left -= 1
                report.losses_injected += 1
            elif protocol:
                choice = self.rng.choice(protocol)
            elif environment:  # pragma: no cover - no protocol action enabled
                choice = self.rng.choice(environment)
            else:  # pragma: no cover - deadlock; invariant checks catch it
                break
            state = choice.target
            report.steps += 1
        return report
