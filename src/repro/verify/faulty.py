"""Deliberately vulnerable baselines for the paper's motivating scenario.

Section I of the paper motivates block acknowledgment with a failure
scenario: a go-back-N protocol with **bounded** sequence numbers and
**cumulative** acknowledgments silently corrupts the transfer when an old
acknowledgment is delayed in the channel and delivered after the sequence
number space has wrapped.  The classes here implement exactly that naive
protocol so the scenario (and a randomized search around it) can be
replayed and the violation observed — see :mod:`repro.verify.scenarios`.

``NaiveGbnSender``/``NaiveGbnReceiver`` are correct for FIFO channels with
domain ``D >= w + 1`` (the classic go-back-N safety condition); the bug
the paper exploits is that no finite ``D`` is safe once acknowledgments
can be reordered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["NaiveGbnSender", "NaiveGbnReceiver", "GbnViolation"]


@dataclass
class GbnViolation:
    """Evidence of a safety violation: messages the sender believes were
    delivered but the receiver never accepted."""

    phantom_seqs: List[int]  # true sequence numbers falsely considered acked
    stale_ack_wire: int  # the wire number of the ack that caused it

    def __str__(self) -> str:
        return (
            f"stale cumulative ack (wire {self.stale_ack_wire}) convinced the "
            f"sender that messages {self.phantom_seqs} were delivered; the "
            "receiver never accepted them"
        )


class NaiveGbnSender:
    """Go-back-N sender with wire sequence numbers mod ``domain``.

    Tracks true sequence numbers internally (``na``, ``ns``) but receives
    only wire (mod-``domain``) cumulative acknowledgments, which it
    resolves — as any bounded-number cumulative scheme must — to the
    outstanding message whose wire number matches.
    """

    def __init__(self, window: int, domain: int) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if domain < window + 1:
            raise ValueError(
                f"go-back-N needs domain >= w + 1 = {window + 1}, got {domain}"
            )
        self.w = window
        self.domain = domain
        self.na = 0  # oldest unacknowledged true sequence number
        self.ns = 0  # next true sequence number to send

    @property
    def can_send(self) -> bool:
        return self.ns < self.na + self.w

    def send_new(self) -> tuple[int, int]:
        """Allocate the next message; returns ``(true_seq, wire_seq)``."""
        if not self.can_send:
            raise RuntimeError(f"window full: na={self.na} ns={self.ns}")
        seq = self.ns
        self.ns += 1
        return seq, seq % self.domain

    def retransmit_all(self) -> List[tuple[int, int]]:
        """Go-back-N timeout: resend every outstanding message."""
        return [(seq, seq % self.domain) for seq in range(self.na, self.ns)]

    def on_cumulative_ack(self, wire_ack: int) -> List[int]:
        """Apply a wire cumulative ack; returns true seqs newly deemed acked.

        The ack means "everything up to (true number ≡ wire_ack mod D)".
        With reordering, a stale ack can match a *newer* outstanding
        message's wire number; the naive resolution (the newest plausible
        match, as in a real wrapped-counter implementation) then slides
        ``na`` over messages that were never delivered.
        """
        matches = [
            seq for seq in range(self.na, self.ns) if seq % self.domain == wire_ack
        ]
        if not matches:
            return []  # duplicate of an already-passed ack: ignored
        upto = max(matches)
        newly = list(range(self.na, upto + 1))
        self.na = upto + 1
        return newly


class NaiveGbnReceiver:
    """Go-back-N receiver: accepts strictly in order, acks cumulatively."""

    def __init__(self, domain: int) -> None:
        if domain <= 0:
            raise ValueError(f"domain must be positive, got {domain}")
        self.domain = domain
        self.nr = 0  # next true sequence number expected
        self.accepted: List[int] = []

    def on_data(self, wire_seq: int) -> Optional[int]:
        """Handle a data message; returns the wire cumulative ack to send.

        In-order data is accepted and acknowledged; anything else re-acks
        the last accepted message (the classic go-back-N duplicate ack).
        Returns None before anything was accepted (nothing to ack yet).
        """
        if wire_seq == self.nr % self.domain:
            self.accepted.append(self.nr)
            self.nr += 1
        if self.nr == 0:
            return None
        return (self.nr - 1) % self.domain


def detect_violation(
    sender: NaiveGbnSender,
    receiver: NaiveGbnReceiver,
    stale_ack_wire: int,
    newly_acked: List[int],
) -> Optional[GbnViolation]:
    """Check whether an ack application acknowledged undelivered messages."""
    phantoms = [seq for seq in newly_acked if seq not in receiver.accepted]
    if phantoms:
        return GbnViolation(phantom_seqs=phantoms, stale_ack_wire=stale_ack_wire)
    return None
