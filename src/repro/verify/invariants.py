"""Paper assertions 6, 7, 8 — the protocol's safety invariant, verbatim.

Each assertion is a predicate over a :class:`~repro.verify.state.SystemState`;
:func:`check_invariant` evaluates all three and returns the list of
violated clauses (empty when the state satisfies the invariant).  The
explorer calls this at every reachable state; tests and the randomized
progress driver call it after every step.

Assertion 6 — counter ordering and window bound::

    na <= nr <= vr <= ns <= na + w

Assertion 7 — record bookkeeping::

    (∀m: ¬ackd[m] : m >= na)        -- everything below na is acked
    (∀m: ackd[m]  : m < nr)         -- only accepted messages are acked
    ¬ackd[na]                       -- na itself is never acked
    (∀m: rcvd[m]  : m < ns)         -- only sent messages are received
    (∀m: ¬rcvd[m] : m >= vr)        -- everything below vr is received

Assertion 8 — channel contents::

    (∀m: *SR^m + *RS^m <= 1)                          -- at most one copy
    (∀m: *SR^m > 0 : m < ns ∧ ¬ackd[m]
                       ∧ (m < nr ∨ ¬rcvd[m]))          -- data in transit
    (∀m: *RS^m > 0 : m < nr ∧ ¬ackd[m])               -- acks in transit

Quantifiers range over all sequence numbers, but with the canonical state
representation only finitely many values can violate any clause, so each
check is a bounded scan.
"""

from __future__ import annotations

from typing import List

from repro.verify.state import SystemState

__all__ = [
    "assertion_6",
    "assertion_7",
    "assertion_8",
    "assertion_9_10_11",
    "check_invariant",
    "InvariantViolation",
]


class InvariantViolation(AssertionError):
    """Raised by :func:`require_invariant` when a state breaks the invariant."""

    def __init__(self, state: SystemState, clauses: List[str]) -> None:
        self.state = state
        self.clauses = clauses
        super().__init__(
            f"invariant violated: {'; '.join(clauses)} in state {state.describe()}"
        )


def assertion_6(state: SystemState, window: int) -> List[str]:
    """Counter ordering ``na <= nr <= vr <= ns <= na + w``."""
    failures = []
    if not state.na <= state.nr:
        failures.append(f"6: na={state.na} > nr={state.nr}")
    if not state.nr <= state.vr:
        failures.append(f"6: nr={state.nr} > vr={state.vr}")
    if not state.vr <= state.ns:
        failures.append(f"6: vr={state.vr} > ns={state.ns}")
    if not state.ns <= state.na + window:
        failures.append(f"6: ns={state.ns} > na+w={state.na + window}")
    return failures


def assertion_7(state: SystemState) -> List[str]:
    """Record bookkeeping for ``ackd`` and ``rcvd``."""
    failures = []
    # ∀m: ¬ackd[m] : m >= na  — canonical form guarantees entries >= na, but
    # the clause also demands everything below na IS acked, which the
    # canonical representation makes true by construction; what remains
    # checkable is the explicit entries.
    if any(m < state.na for m in state.ackd):  # defensive: canonical breach
        failures.append("7: ackd entry below na")
    if any(m >= state.nr for m in state.ackd) or state.na > state.nr:
        failures.append("7: ackd[m] for m >= nr (only accepted may be acked)")
    if state.na in state.ackd:
        failures.append(f"7: ackd[na] with na={state.na}")
    if any(m >= state.ns for m in state.rcvd) or state.vr > state.ns:
        failures.append("7: rcvd[m] for m >= ns (only sent may be received)")
    if any(m < state.vr for m in state.rcvd):  # defensive: canonical breach
        failures.append("7: rcvd entry below vr")
    return failures


def assertion_8(state: SystemState) -> List[str]:
    """Channel-content constraints."""
    failures = []
    touched = set(state.c_sr)
    for lo, hi in state.c_rs:
        touched.update(range(lo, hi + 1))
    for m in sorted(touched):
        copies = state.count_sr(m) + state.count_rs(m)
        if copies > 1:
            failures.append(f"8: {copies} copies of {m} in transit")
        if state.count_sr(m) > 0:
            if not (m < state.ns and not state.is_ackd(m)):
                failures.append(
                    f"8: data {m} in C_SR but ns={state.ns}, ackd={state.is_ackd(m)}"
                )
            if not (m < state.nr or not state.is_rcvd(m)):
                failures.append(f"8: data {m} in C_SR but rcvd and m >= nr")
        if state.count_rs(m) > 0:
            if not (m < state.nr and not state.is_ackd(m)):
                failures.append(
                    f"8: ack for {m} in C_RS but nr={state.nr}, ackd={state.is_ackd(m)}"
                )
    return failures


def assertion_9_10_11(state: SystemState, window: int) -> List[str]:
    """The Section V decode preconditions, checked directly.

    The paper derives these from 6 ∧ 8; checking them verbatim in every
    reachable state validates the exact ranges that make the mod-2w
    reconstruction function ``f`` correct:

    * 9/10 — every ack pair ``(i, j)`` in transit satisfies
      ``na <= i`` and ``j < na + w`` (the sender decodes with reference
      ``na``);
    * 11 — every data number ``v`` in transit satisfies
      ``max(0, nr - w) <= v < nr + w`` (the receiver decodes with
      reference ``max(0, nr - w)``).
    """
    failures = []
    for lo, hi in state.c_rs:
        if not (state.na <= lo and hi < state.na + window):
            failures.append(
                f"9/10: ack ({lo},{hi}) outside [na, na+w) = "
                f"[{state.na}, {state.na + window})"
            )
    low = max(0, state.nr - window)
    for v in state.c_sr:
        if not (low <= v < state.nr + window):
            failures.append(
                f"11: data {v} outside [max(0,nr-w), nr+w) = "
                f"[{low}, {state.nr + window})"
            )
    return failures


def check_invariant(state: SystemState, window: int) -> List[str]:
    """Evaluate 6 ∧ 7 ∧ 8 plus the Section-V decode ranges (9-11).

    Returns the violated clauses (empty = the full invariant holds).
    """
    return (
        assertion_6(state, window)
        + assertion_7(state)
        + assertion_8(state)
        + assertion_9_10_11(state, window)
    )


def require_invariant(state: SystemState, window: int) -> None:
    """Raise :class:`InvariantViolation` unless the invariant holds."""
    clauses = check_invariant(state, window)
    if clauses:
        raise InvariantViolation(state, clauses)
