"""Refinement checking: timed runs are executions of the abstract spec.

The model checker (E8) verifies the *abstract* protocol; the timed
implementations realize its guards with timers.  The missing link is the
claim that every behaviour the timed implementation exhibits is one the
abstract protocol allows — a simulation/refinement relation.  This module
checks it mechanically:

1. run a timed transfer with full tracing (endpoint events **and**
   channel loss events);
2. replay the trace, event by event, against the paper's guarded-command
   semantics: every send must satisfy action 0's guard, every
   retransmission the Section-IV ``timeout(i)`` guard, every reception a
   matching in-flight message, every emitted acknowledgment exactly the
   block actions 4+5 would produce — with the invariant (assertions
   6 ∧ 7 ∧ 8 ∧ 9–11) checked after every step.

A safe timer configuration must replay cleanly: any step the abstract
guard forbids is a protocol bug (this check retroactively catches the
coverage-release bug documented in ``protocols/blockack.py``).  The
``aggressive`` mode fails the replay at its first premature
retransmission, which is the expected shape.

The replay consumes traces from runs with **unbounded numbering** (so
trace sequence numbers are the abstract ones); bounded variants are tied
to unbounded ones by the E7 equivalence instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.trace.events import EventKind, TraceEvent
from repro.verify.invariants import check_invariant
from repro.verify.state import SystemState, initial_state

__all__ = ["RefinementReport", "replay_trace", "check_refinement"]


@dataclass
class RefinementReport:
    """Outcome of replaying one trace against the abstract semantics."""

    steps: int = 0
    errors: List[str] = field(default_factory=list)
    invariant_violations: List[str] = field(default_factory=list)
    final_state: Optional[SystemState] = None

    @property
    def ok(self) -> bool:
        return not self.errors and not self.invariant_violations

    def summary(self) -> str:
        status = "REFINES" if self.ok else "VIOLATES"
        return (
            f"{status}: {self.steps} abstract steps, "
            f"{len(self.errors)} guard errors, "
            f"{len(self.invariant_violations)} invariant violations"
        )


class _Replayer:
    def __init__(self, window: int) -> None:
        self.window = window
        self.state = initial_state()
        self.report = RefinementReport()

    def fail(self, event: TraceEvent, reason: str) -> None:
        self.report.errors.append(f"{event.format().strip()}: {reason}")

    def step(self, event: TraceEvent, new_state: SystemState) -> None:
        self.state = new_state
        self.report.steps += 1
        clauses = check_invariant(new_state, self.window)
        if clauses:
            self.report.invariant_violations.append(
                f"after {event.format().strip()}: {'; '.join(clauses)}"
            )

    # -- the abstract actions, guard-checked --------------------------------

    def send_data(self, event: TraceEvent) -> None:
        state = self.state
        if event.seq != state.ns:
            return self.fail(event, f"sent {event.seq}, abstract ns={state.ns}")
        if not state.ns < state.na + self.window:
            return self.fail(event, "action 0 guard: window full")
        self.step(event, state.with_sr_added(state.ns).replace(ns=state.ns + 1))

    def resend_data(self, event: TraceEvent) -> None:
        state = self.state
        seq = event.seq
        # the paper's timeout(i) guard (Section IV)
        if not state.na <= seq < state.ns:
            return self.fail(event, f"resend {seq} outside [na, ns)")
        if state.is_ackd(seq):
            return self.fail(event, f"resend {seq}: already acknowledged")
        if state.count_sr(seq) != 0:
            return self.fail(event, f"resend {seq}: a copy is still in C_SR")
        if not (seq < state.nr or not state.is_rcvd(seq)):
            return self.fail(event, f"resend {seq}: buffered at the receiver")
        if state.count_rs(seq) != 0:
            return self.fail(event, f"resend {seq}: a covering ack is in C_RS")
        self.step(event, state.with_sr_added(seq))

    def drop_data(self, event: TraceEvent) -> None:
        state = self.state
        if state.count_sr(event.seq) == 0:
            return self.fail(event, f"lost data {event.seq} not in C_SR")
        self.step(event, state.with_sr_removed(event.seq))

    def drop_ack(self, event: TraceEvent) -> None:
        state = self.state
        pair = (event.seq, event.seq_hi)
        if pair not in state.c_rs:
            return self.fail(event, f"lost ack {pair} not in C_RS")
        self.step(event, state.with_rs_removed(pair))

    def recv_data(self, event: TraceEvent, emits_dup_ack: bool) -> None:
        state = self.state
        seq = event.seq
        if state.count_sr(seq) == 0:
            return self.fail(event, f"received data {seq} not in C_SR")
        after = state.with_sr_removed(seq)
        if seq < after.nr:
            if not emits_dup_ack:
                return self.fail(
                    event, f"duplicate {seq} accepted without a (v,v) ack"
                )
            self.step(event, after.with_rs_added((seq, seq)))
        else:
            if emits_dup_ack:
                return self.fail(event, f"fresh data {seq} answered as duplicate")
            self.step(event, after.replace(rcvd=after.rcvd | {seq}))

    def send_ack(self, event: TraceEvent) -> None:
        state = self.state
        lo, hi = event.seq, event.seq_hi
        # actions 4 (advance vr over the received run) then 5 (emit block)
        vr = state.vr
        while vr in state.rcvd:
            vr += 1
        if not (lo == state.nr and hi == vr - 1 and state.nr < vr):
            return self.fail(
                event,
                f"ack ({lo},{hi}) but actions 4+5 would produce "
                f"({state.nr},{vr - 1})",
            )
        after = state.replace(vr=vr)
        self.step(event, after.with_rs_added((lo, hi)).replace(nr=vr))

    def recv_ack(self, event: TraceEvent) -> None:
        state = self.state
        pair = (event.seq, event.seq_hi)
        if pair not in state.c_rs:
            return self.fail(event, f"received ack {pair} not in C_RS")
        after = state.with_rs_removed(pair)
        ackd = set(after.ackd)
        ackd.update(range(pair[0], pair[1] + 1))
        na = after.na
        while na in ackd:
            na += 1
        self.step(event, after.replace(na=na, ackd=frozenset(ackd)))


def replay_trace(events: List[TraceEvent], window: int) -> RefinementReport:
    """Replay a timed-run trace against the abstract semantics."""
    replayer = _Replayer(window)
    index = 0
    while index < len(events):
        event = events[index]
        kind = event.kind
        if kind is EventKind.SEND_DATA:
            replayer.send_data(event)
        elif kind is EventKind.RESEND_DATA:
            replayer.resend_data(event)
        elif kind is EventKind.DROP:
            if event.seq_hi is None:
                replayer.drop_data(event)
            else:
                replayer.drop_ack(event)
        elif kind is EventKind.RECV_DATA:
            # a duplicate reception is immediately followed by its (v,v)
            emits_dup = (
                index + 1 < len(events)
                and events[index + 1].kind is EventKind.RESEND_ACK
                and events[index + 1].seq == event.seq
            )
            replayer.recv_data(event, emits_dup)
            if emits_dup:
                index += 1  # the RESEND_ACK was part of action 3
        elif kind is EventKind.SEND_ACK:
            replayer.send_ack(event)
        elif kind is EventKind.RECV_ACK:
            replayer.recv_ack(event)
        # TIMEOUT, DELIVER, WINDOW_OPEN, ACCEPT, NOTE: bookkeeping only
        index += 1
        if len(replayer.report.errors) >= 10:
            break
    replayer.report.final_state = replayer.state
    return replayer.report


def check_refinement(
    window: int,
    total: int,
    seed: int,
    timeout_mode: str = "per_message_safe",
    loss: float = 0.08,
    spread: float = 1.2,
) -> RefinementReport:
    """Run one traced timed transfer and replay it against the spec."""
    from repro.channel.delay import UniformDelay
    from repro.channel.impairments import BernoulliLoss, NoLoss
    from repro.core.messages import BlockAck, DataMessage
    from repro.protocols.blockack import BlockAckReceiver, BlockAckSender
    from repro.sim.runner import LinkSpec, run_transfer
    from repro.workloads.sources import GreedySource

    sender = BlockAckSender(window, timeout_mode=timeout_mode)
    if timeout_mode == "oracle":
        sender.timeout_period = 0.25
    receiver = BlockAckReceiver(window)
    low = max(0.0, 1.0 - spread / 2)
    link = lambda: LinkSpec(
        delay=UniformDelay(low, 1.0 + spread / 2),
        loss=BernoulliLoss(loss) if loss > 0 else NoLoss(),
    )
    result = run_transfer(
        sender, receiver, GreedySource(total),
        forward=link(), reverse=link(), seed=seed,
        trace=True, record_channel_drops=True, max_time=1_000_000.0,
    )
    if not (result.completed and result.in_order):
        report = RefinementReport()
        report.errors.append(f"transfer itself failed: {result.summary()}")
        return report
    return replay_trace(result.trace.events, window)
