"""Runtime invariant monitoring for live simulations.

The model checker (E8) verifies assertions 6 ∧ 7 ∧ 8 exhaustively, but
only for small windows and short transfers.  :class:`InvariantMonitor`
complements it at full scale: it observes a *running* timed simulation —
every channel send, delivery, loss — and checks the observable
consequences of the paper's invariant continuously:

* **one wire per number (assertion 8 + 6).**  In-flight data messages
  occupy true sequence numbers in ``[na, ns)``, a range narrower than the
  wire domain, so no two in-flight data messages may carry the same wire
  number; likewise no sequence number may be covered by two in-flight
  acknowledgments, and no in-flight data message's number may be covered
  by any in-flight acknowledgment.
* **counter ordering (assertion 6).**  ``na <= nr <= vr`` across the two
  endpoints, sampled at every channel event.

A safe protocol configuration produces zero violations over arbitrarily
long adversarial runs; the ``aggressive`` timeout mode produces them
readily — which is how this monitor earns its keep in the test suite (it
detects, at runtime and at scale, exactly the class of bug whose
exhaustive form E8 catches in the small).

Note the deliberate scope: the monitor checks *wire-level multiplicity*,
which the invariant implies but which requires no decoding.  It therefore
works identically for unbounded and mod-2w numbering, and cannot itself
be fooled by the decode ambiguity that broken configurations create.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.core.messages import BlockAck, DataMessage

__all__ = ["InvariantMonitor", "MonitorViolation", "span_wires"]


def span_wires(span, domain: Optional[int]) -> set:
    """The set of wire numbers an ack span ``(lo, hi)`` covers.

    With a finite wire-number ``domain`` the span may wrap; unbounded
    numbering never wraps.  Shared by :class:`InvariantMonitor` and the
    sampling probes of :mod:`repro.obs.probes`.
    """
    lo, hi = span
    if domain is None or hi >= lo:
        return set(range(lo, hi + 1))
    return set(range(lo, domain)) | set(range(0, hi + 1))


@dataclass
class MonitorViolation:
    """One observed breach of the invariant's runtime consequences."""

    time: float
    clause: str
    detail: str

    def __str__(self) -> str:
        return f"t={self.time:.4f} {self.clause}: {self.detail}"


@dataclass
class _FlightState:
    """Wire-level occupancy of one direction."""

    data_wires: dict = field(default_factory=dict)  # wire -> count
    ack_spans: list = field(default_factory=list)  # list of (lo, hi) wires


class InvariantMonitor:
    """Attach to a sender/receiver pair and its channels; collect violations.

    Parameters
    ----------
    sender, receiver:
        Block-ack endpoints (reference or bounded); used for the counter-
        ordering check when they expose ``window``/``book`` state.
    forward, reverse:
        The two :class:`~repro.channel.channel.Channel` objects.
    domain:
        Wire-number domain size (``2*K*w``), needed to interpret wrapped
        ack spans; None for unbounded numbering.
    strict:
        If True, raise ``AssertionError`` at the first violation instead
        of collecting.
    """

    def __init__(
        self,
        sender: Any,
        receiver: Any,
        forward: Any,
        reverse: Any,
        domain: Optional[int] = None,
        strict: bool = False,
    ) -> None:
        self.sender = sender
        self.receiver = receiver
        self.domain = domain
        self.strict = strict
        self.violations: List[MonitorViolation] = []
        self._forward = _FlightState()
        self._sim = forward.sim
        forward.add_observer(self._on_forward_event)
        reverse.add_observer(self._on_reverse_event)
        self._reverse = _FlightState()

    # ------------------------------------------------------------------
    # channel observers
    # ------------------------------------------------------------------

    def _on_forward_event(self, kind: str, message: Any) -> None:
        if not isinstance(message, DataMessage):
            return
        wires = self._forward.data_wires
        if kind in ("send", "duplicate"):
            wires[message.seq] = wires.get(message.seq, 0) + 1
            if wires[message.seq] > 1:
                self._flag(
                    "8: duplicate data in transit",
                    f"two in-flight data messages carry wire seq {message.seq}",
                )
            if self._covered_by_ack(message.seq):
                self._flag(
                    "8: data coexists with covering ack",
                    f"data wire seq {message.seq} sent while an in-flight "
                    "acknowledgment covers it",
                )
        else:  # deliver / lose / age all remove the copy
            count = wires.get(message.seq, 0) - 1
            if count <= 0:
                wires.pop(message.seq, None)
            else:
                wires[message.seq] = count
        self._check_counters()

    def _on_reverse_event(self, kind: str, message: Any) -> None:
        if not isinstance(message, BlockAck):
            return
        spans = self._reverse.ack_spans
        span = (message.lo, message.hi)
        if kind in ("send", "duplicate"):
            covered = self._span_wires(span)
            for wire in covered:
                if any(
                    wire in self._span_wires(existing) for existing in spans
                ):
                    self._flag(
                        "8: overlapping acks in transit",
                        f"wire seq {wire} covered by two in-flight acks",
                    )
                    break
            for wire in covered:
                if wire in self._forward.data_wires:
                    self._flag(
                        "8: ack coexists with covered data",
                        f"ack {span} sent while data wire seq {wire} in flight",
                    )
                    break
            spans.append(span)
        else:
            if span in spans:
                spans.remove(span)
        self._check_counters()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _span_wires(self, span) -> set:
        return span_wires(span, self.domain)

    def _covered_by_ack(self, wire: int) -> bool:
        return any(
            wire in self._span_wires(span) for span in self._reverse.ack_spans
        )

    def _check_counters(self) -> None:
        sender_state = getattr(self.sender, "window", None) or getattr(
            self.sender, "book", None
        )
        receiver_state = getattr(self.receiver, "window", None) or getattr(
            self.receiver, "book", None
        )
        if sender_state is None or receiver_state is None:
            return
        if self.domain is not None:
            return  # wrapped counters are not directly comparable
        na = sender_state.na
        nr = receiver_state.nr
        vr = receiver_state.vr
        if not na <= nr <= vr:
            self._flag("6: counter ordering", f"na={na} nr={nr} vr={vr}")

    def _flag(self, clause: str, detail: str) -> None:
        violation = MonitorViolation(self._sim.now, clause, detail)
        self.violations.append(violation)
        if self.strict:
            raise AssertionError(str(violation))

    @property
    def clean(self) -> bool:
        """True if no violation has been observed."""
        return not self.violations

    def report(self, limit: int = 10) -> str:
        """Human-readable summary of observed violations."""
        if self.clean:
            return "invariant monitor: clean"
        lines = [f"invariant monitor: {len(self.violations)} violation(s)"]
        lines += [f"  {v}" for v in self.violations[:limit]]
        if len(self.violations) > limit:
            lines.append(f"  ... ({len(self.violations) - limit} more)")
        return "\n".join(lines)
