"""Runtime invariant monitoring for live simulations.

The model checker (E8) verifies assertions 6 ∧ 7 ∧ 8 exhaustively, but
only for small windows and short transfers.  :class:`InvariantMonitor`
complements it at full scale: it observes a *running* timed simulation —
every channel send, delivery, loss — and checks the observable
consequences of the paper's invariant continuously:

* **one wire per number (assertion 8 + 6).**  In-flight data messages
  occupy true sequence numbers in ``[na, ns)``, a range narrower than the
  wire domain, so no two in-flight data messages may carry the same wire
  number; likewise no sequence number may be covered by two in-flight
  acknowledgments, and no in-flight data message's number may be covered
  by any in-flight acknowledgment.
* **counter ordering (assertion 6).**  ``na <= nr <= vr`` across the two
  endpoints, sampled at every channel event.

A safe protocol configuration produces zero violations over arbitrarily
long adversarial runs; the ``aggressive`` timeout mode produces them
readily — which is how this monitor earns its keep in the test suite (it
detects, at runtime and at scale, exactly the class of bug whose
exhaustive form E8 catches in the small).

Note the deliberate scope: the monitor checks *wire-level multiplicity*,
which the invariant implies but which requires no decoding.  It therefore
works identically for unbounded and mod-2w numbering, and cannot itself
be fooled by the decode ambiguity that broken configurations create.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.core.messages import BlockAck, DataMessage

__all__ = [
    "InvariantMonitor",
    "MonitorViolation",
    "StabilizationMonitor",
    "span_wires",
]


def span_wires(span, domain: Optional[int]) -> set:
    """The set of wire numbers an ack span ``(lo, hi)`` covers.

    With a finite wire-number ``domain`` the span may wrap; unbounded
    numbering never wraps.  Shared by :class:`InvariantMonitor` and the
    sampling probes of :mod:`repro.obs.probes`.
    """
    lo, hi = span
    if domain is None or hi >= lo:
        return set(range(lo, hi + 1))
    return set(range(lo, domain)) | set(range(0, hi + 1))


@dataclass
class MonitorViolation:
    """One observed breach of the invariant's runtime consequences."""

    time: float
    clause: str
    detail: str

    def __str__(self) -> str:
        return f"t={self.time:.4f} {self.clause}: {self.detail}"


@dataclass
class _FlightState:
    """Wire-level occupancy of one direction."""

    data_wires: dict = field(default_factory=dict)  # wire -> count
    ack_spans: list = field(default_factory=list)  # list of (lo, hi) wires


class InvariantMonitor:
    """Attach to a sender/receiver pair and its channels; collect violations.

    Parameters
    ----------
    sender, receiver:
        Block-ack endpoints (reference or bounded); used for the counter-
        ordering check when they expose ``window``/``book`` state.
    forward, reverse:
        The two :class:`~repro.channel.channel.Channel` objects.
    domain:
        Wire-number domain size (``2*K*w``), needed to interpret wrapped
        ack spans; None for unbounded numbering.
    strict:
        If True, raise ``AssertionError`` at the first violation instead
        of collecting.
    """

    def __init__(
        self,
        sender: Any,
        receiver: Any,
        forward: Any,
        reverse: Any,
        domain: Optional[int] = None,
        strict: bool = False,
    ) -> None:
        self.sender = sender
        self.receiver = receiver
        self.domain = domain
        self.strict = strict
        self.violations: List[MonitorViolation] = []
        self._forward = _FlightState()
        self._sim = forward.sim
        forward.add_observer(self._on_forward_event)
        reverse.add_observer(self._on_reverse_event)
        self._reverse = _FlightState()

    # ------------------------------------------------------------------
    # channel observers
    # ------------------------------------------------------------------

    def _on_forward_event(self, kind: str, message: Any) -> None:
        if not isinstance(message, DataMessage):
            return
        wires = self._forward.data_wires
        if kind in ("send", "duplicate"):
            wires[message.seq] = wires.get(message.seq, 0) + 1
            if wires[message.seq] > 1:
                self._flag(
                    "8: duplicate data in transit",
                    f"two in-flight data messages carry wire seq {message.seq}",
                )
            if self._covered_by_ack(message.seq):
                self._flag(
                    "8: data coexists with covering ack",
                    f"data wire seq {message.seq} sent while an in-flight "
                    "acknowledgment covers it",
                )
        else:  # deliver / lose / age all remove the copy
            count = wires.get(message.seq, 0) - 1
            if count <= 0:
                wires.pop(message.seq, None)
            else:
                wires[message.seq] = count
        self._check_counters()

    def _on_reverse_event(self, kind: str, message: Any) -> None:
        if not isinstance(message, BlockAck):
            return
        spans = self._reverse.ack_spans
        span = (message.lo, message.hi)
        if kind in ("send", "duplicate"):
            covered = self._span_wires(span)
            for wire in covered:
                if any(
                    wire in self._span_wires(existing) for existing in spans
                ):
                    self._flag(
                        "8: overlapping acks in transit",
                        f"wire seq {wire} covered by two in-flight acks",
                    )
                    break
            for wire in covered:
                if wire in self._forward.data_wires:
                    self._flag(
                        "8: ack coexists with covered data",
                        f"ack {span} sent while data wire seq {wire} in flight",
                    )
                    break
            spans.append(span)
        else:
            if span in spans:
                spans.remove(span)
        self._check_counters()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _span_wires(self, span) -> set:
        return span_wires(span, self.domain)

    def _covered_by_ack(self, wire: int) -> bool:
        return any(
            wire in self._span_wires(span) for span in self._reverse.ack_spans
        )

    def _check_counters(self) -> None:
        sender_state = getattr(self.sender, "window", None) or getattr(
            self.sender, "book", None
        )
        receiver_state = getattr(self.receiver, "window", None) or getattr(
            self.receiver, "book", None
        )
        if sender_state is None or receiver_state is None:
            return
        if self.domain is not None:
            return  # wrapped counters are not directly comparable
        na = sender_state.na
        nr = receiver_state.nr
        vr = receiver_state.vr
        if not na <= nr <= vr:
            self._flag("6: counter ordering", f"na={na} nr={nr} vr={vr}")

    def _flag(self, clause: str, detail: str) -> None:
        violation = MonitorViolation(self._sim.now, clause, detail)
        self.violations.append(violation)
        if self.strict:
            raise AssertionError(str(violation))

    @property
    def clean(self) -> bool:
        """True if no violation has been observed."""
        return not self.violations

    def report(self, limit: int = 10) -> str:
        """Human-readable summary of observed violations."""
        if self.clean:
            return "invariant monitor: clean"
        lines = [f"invariant monitor: {len(self.violations)} violation(s)"]
        lines += [f"  {v}" for v in self.violations[:limit]]
        if len(self.violations) > limit:
            lines.append(f"  ... ({len(self.violations) - limit} more)")
        return "\n".join(lines)


class StabilizationMonitor(InvariantMonitor):
    """An :class:`InvariantMonitor` that judges recovery from corruption.

    The fault plan reports every :class:`StateCorruption` it applies and
    every guard/repair rule that fires; the inherited channel observers
    keep flagging invariant violations (counter ordering, wire-level
    multiplicity) throughout.  From those three series the monitor
    measures **time-to-reconvergence** — how long after the last
    corruption the system kept violating or repairing — and renders the
    three-way verdict of the self-stabilization literature:

    ``converged``
        The transfer completed, delivered in order, and the final state
        satisfies every locally checkable invariant.
    ``degraded``
        The final state is consistent but the corruption cost user-visible
        damage (an out-of-order or corrupted delivery — e.g. a mutated
        payload the protocol cannot distinguish from real data).
    ``diverged``
        The transfer never completed, or the final state still violates
        an invariant: the corruption escaped the repair rules.
    """

    def __init__(
        self,
        sender: Any,
        receiver: Any,
        forward: Any,
        reverse: Any,
        domain: Optional[int] = None,
        strict: bool = False,
    ) -> None:
        super().__init__(
            sender, receiver, forward, reverse, domain=domain, strict=strict
        )
        self.corruptions: List[dict] = []
        self.repairs: List[dict] = []

    # ------------------------------------------------------------------
    # fault-plan callbacks
    # ------------------------------------------------------------------

    def note_corruption(self, time: float, spec: Any, mutations: List[str]) -> None:
        self.corruptions.append(
            {
                "time": time,
                "site": spec.site,
                "severity": spec.severity,
                "mutations": list(mutations),
            }
        )

    def note_repairs(self, time: float, endpoint: str, repairs: List[str]) -> None:
        self.repairs.append(
            {"time": time, "endpoint": endpoint, "repairs": list(repairs)}
        )

    # ------------------------------------------------------------------
    # final-state sweep and the verdict
    # ------------------------------------------------------------------

    def final_state_violations(self) -> List[str]:
        """Locally checkable invariant breaches in the *final* state."""
        out: List[str] = []
        for name, endpoint in (
            ("sender", self.sender),
            ("receiver", self.receiver),
        ):
            state = getattr(endpoint, "window", None) or getattr(
                endpoint, "book", None
            )
            if state is None:
                continue
            check = getattr(state, "check_invariant", None)
            if check is not None:
                try:
                    check()
                except AssertionError as exc:
                    out.append(f"{name}: {exc}")
            repair = getattr(state, "repair", None)
            if repair is not None:
                # a repair rule that still wants to fire is a violation;
                # probe a deep copy so the sweep itself never mutates
                pending = copy.deepcopy(state).repair()
                if pending:
                    out.append(f"{name}: unrepaired state ({'; '.join(pending)})")
        if self.domain is None:
            sender_state = getattr(self.sender, "window", None)
            receiver_state = getattr(self.receiver, "window", None)
            if sender_state is not None and receiver_state is not None:
                na, nr, vr = (
                    sender_state.na,
                    receiver_state.nr,
                    receiver_state.vr,
                )
                if not na <= nr <= vr:
                    out.append(f"6: counter ordering na={na} nr={nr} vr={vr}")
        return out

    @property
    def reconvergence_time(self) -> Optional[float]:
        """Virtual time from the first corruption to the last disturbance.

        The last disturbance is the final violation flagged or repair
        applied at-or-after the first corruption; 0.0 when corruption
        caused no observable disturbance at all.  None before any
        corruption fired.
        """
        if not self.corruptions:
            return None
        t0 = self.corruptions[0]["time"]
        times = [r["time"] for r in self.repairs if r["time"] >= t0]
        times += [v.time for v in self.violations if v.time >= t0]
        times += [c["time"] for c in self.corruptions]
        return max(times) - t0

    def verdict(self, completed: bool, in_order: bool) -> str:
        final = self.final_state_violations()
        if final or not completed:
            return "diverged"
        if not in_order:
            return "degraded"
        return "converged"

    def summary(self, completed: bool, in_order: bool) -> dict:
        """The ``TransferResult.stabilization`` payload."""
        t0 = self.corruptions[0]["time"] if self.corruptions else None
        return {
            "verdict": self.verdict(completed, in_order),
            "corruptions": len(self.corruptions),
            "repairs": sum(len(r["repairs"]) for r in self.repairs),
            "reconvergence_time": self.reconvergence_time,
            "violations_after_corruption": sum(
                1 for v in self.violations if t0 is not None and v.time >= t0
            ),
            "final_state_violations": self.final_state_violations(),
            "events": {
                "corruptions": self.corruptions,
                "repairs": self.repairs,
            },
        }
