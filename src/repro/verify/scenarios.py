"""Scripted replays of the paper's Section-I motivating scenario (E1).

Two replays under the *same* adversarial schedule — six messages sent, the
first acknowledgment delayed in the channel, the second delivered first,
then a burst of losses:

* :func:`run_intro_scenario_gbn` — naive bounded-number go-back-N: the
  stale cumulative acknowledgment is misinterpreted after the sequence
  space wraps and the sender silently believes lost messages were
  delivered (**safety violation**).
* :func:`run_intro_scenario_blockack` — the paper's protocol: the second
  acknowledgment ``(5, 5)`` cannot move ``na`` past the un-acknowledged
  prefix, so the sender never frees the window, never wraps, and the
  delayed ``(0, 4)`` is interpreted correctly (**no violation**).

Both functions return a :class:`ScenarioResult` carrying a narrated trace
suitable for printing, so the E1 benchmark and the quickstart example can
show the exact mechanics side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.window import SenderWindow
from repro.verify.faulty import (
    GbnViolation,
    NaiveGbnReceiver,
    NaiveGbnSender,
    detect_violation,
)

__all__ = ["ScenarioResult", "run_intro_scenario_gbn", "run_intro_scenario_blockack"]


@dataclass
class ScenarioResult:
    """Outcome of one scripted scenario replay."""

    protocol: str
    trace: List[str] = field(default_factory=list)
    violation: Optional[GbnViolation] = None
    sender_believes_delivered: int = 0  # true seqs the sender considers acked
    receiver_actually_accepted: int = 0

    @property
    def safe(self) -> bool:
        """True when the sender's belief never exceeded reality."""
        return (
            self.violation is None
            and self.sender_believes_delivered <= self.receiver_actually_accepted
        )

    def narrate(self) -> str:
        header = f"=== {self.protocol} ===\n"
        body = "\n".join(f"  {line}" for line in self.trace)
        verdict = (
            f"\n  VERDICT: SAFETY VIOLATION — {self.violation}"
            if self.violation
            else "\n  VERDICT: safe (sender belief matches receiver state)"
        )
        return header + body + verdict


def run_intro_scenario_gbn(window: int = 6, domain: int = 7) -> ScenarioResult:
    """Replay the Section-I scenario against naive bounded go-back-N.

    Schedule: send 0..5; receiver acks after 0..4 (one cumulative ack) and
    after 5 (another); the first ack is delayed, the second arrives; the
    sender wraps the number space with six new messages, all lost; the
    delayed ack finally arrives and is misinterpreted.
    """
    result = ScenarioResult(protocol=f"go-back-N (w={window}, domain={domain})")
    sender = NaiveGbnSender(window, domain)
    receiver = NaiveGbnReceiver(domain)

    # 1. Sender transmits messages 0..5; receiver accepts them in order.
    first_batch = [sender.send_new() for _ in range(6)]
    result.trace.append(
        "sender transmits data 0..5 (wire "
        + ",".join(str(wire) for _, wire in first_batch)
        + ")"
    )
    acks: List[int] = []
    for index, (_true_seq, wire_seq) in enumerate(first_batch):
        ack = receiver.on_data(wire_seq)
        # the receiver acknowledges after 0..4 as one cumulative ack and
        # after 5 as another (matching the paper's narration)
        if index == 4 or index == 5:
            assert ack is not None
            acks.append(ack)
    result.trace.append(
        f"receiver accepted 0..5, emitted cumulative acks wire={acks}"
    )

    # 2. Reorder: the second ack (wire 5) overtakes the first (wire 4).
    delayed_ack, fast_ack = acks[0], acks[1]
    newly = sender.on_cumulative_ack(fast_ack)
    result.trace.append(
        f"ack wire={fast_ack} arrives first; sender marks {newly} delivered "
        f"(na={sender.na})"
    )
    result.trace.append(f"ack wire={delayed_ack} remains stuck in the channel")

    # 3. The window is open again; the sender wraps the number space.
    second_batch = []
    while sender.can_send:
        second_batch.append(sender.send_new())
    result.trace.append(
        "sender transmits data "
        f"{second_batch[0][0]}..{second_batch[-1][0]} (wire "
        + ",".join(str(wire) for _, wire in second_batch)
        + ") — ALL LOST in the channel"
    )

    # 4. The stale ack finally arrives and matches a wrapped wire number.
    newly = sender.on_cumulative_ack(delayed_ack)
    result.trace.append(
        f"stale ack wire={delayed_ack} arrives; sender interprets it as "
        f"acknowledging {newly} (na={sender.na})"
    )
    result.violation = detect_violation(sender, receiver, delayed_ack, newly)
    result.sender_believes_delivered = sender.na
    result.receiver_actually_accepted = receiver.nr
    return result


def run_intro_scenario_blockack(window: int = 6) -> ScenarioResult:
    """Replay the same schedule against the block-acknowledgment sender.

    The receiver's two acknowledgments are the blocks ``(0, 4)`` and
    ``(5, 5)``.  Delivering ``(5, 5)`` first records message 5 but cannot
    advance ``na`` past the unacknowledged 0..4, so the window stays shut:
    there is no second batch to lose and no wrapped number to confuse.
    """
    result = ScenarioResult(protocol=f"block acknowledgment (w={window})")
    sender = SenderWindow(window)
    receiver_accepted = 0

    sent = [sender.take_next() for _ in range(6)]
    result.trace.append(f"sender transmits data {sent[0]}..{sent[-1]}")
    receiver_accepted = 6  # receiver accepts 0..5 exactly as before
    result.trace.append(
        "receiver accepted 0..5, emitted block acks (0,4) and (5,5)"
    )

    outcome = sender.apply_ack(5, 5)
    result.trace.append(
        f"ack (5,5) arrives first; newly acked {outcome.newly_acked}, "
        f"na stays {sender.na} — window still closed"
    )
    result.trace.append(
        f"sender.can_send = {sender.can_send}: no new messages can be sent, "
        "so nothing exists for the stale-ack confusion to corrupt"
    )

    outcome = sender.apply_ack(0, 4)
    result.trace.append(
        f"delayed ack (0,4) arrives; newly acked {outcome.newly_acked}, "
        f"na advances to {sender.na}"
    )
    result.sender_believes_delivered = sender.na
    result.receiver_actually_accepted = receiver_accepted
    return result
