"""Immutable global states of the paper's abstract protocol system.

Section II defines the protocol as two processes plus two channels, where
each channel is a *set* of messages (so loss and reorder are inherent) and
actions execute atomically and nondeterministically.  The model checker
(:mod:`repro.verify.explorer`) enumerates exactly that system, so states
must be small, hashable values.

A :class:`SystemState` packs:

* the sender's ``na``, ``ns`` and its ``ackd`` record,
* the receiver's ``nr``, ``vr`` and its ``rcvd`` record,
* ``c_sr`` — the multiset of data sequence numbers in transit S->R,
* ``c_rs`` — the multiset of ``(lo, hi)`` ack pairs in transit R->S.

``ackd`` stores only the true entries at/above ``na`` (everything below
``na`` is implicitly acknowledged — paper assertion 7) and ``rcvd`` only
the true entries at/above ``vr`` (everything below ``vr`` is implicitly
received), which keeps the state finite and canonical.  Channels are
stored as sorted tuples: the *set* semantics of the paper mean channel
contents have no order, and a canonical ordering collapses equivalent
states during exploration.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Tuple

__all__ = ["SystemState", "initial_state", "AckPair"]

AckPair = Tuple[int, int]


@dataclass(frozen=True)
class SystemState:
    """One global state of the abstract protocol system."""

    na: int
    ns: int
    nr: int
    vr: int
    ackd: frozenset  # true entries >= na
    rcvd: frozenset  # true entries >= vr
    c_sr: tuple  # sorted tuple of data sequence numbers in transit
    c_rs: tuple  # sorted tuple of (lo, hi) ack pairs in transit

    # ------------------------------------------------------------------
    # record queries (with the implicit-prefix convention)
    # ------------------------------------------------------------------

    def is_ackd(self, seq: int) -> bool:
        """Paper ``ackd[seq]``: true below ``na`` or recorded."""
        return seq < self.na or seq in self.ackd

    def is_rcvd(self, seq: int) -> bool:
        """Paper ``rcvd[seq]``: true below ``vr`` or recorded."""
        return seq < self.vr or seq in self.rcvd

    # ------------------------------------------------------------------
    # the paper's channel occupancy counts
    # ------------------------------------------------------------------

    def count_sr(self, seq: int) -> int:
        """``*SR^m``: copies of data message ``seq`` in transit S->R."""
        return sum(1 for m in self.c_sr if m == seq)

    def count_rs(self, seq: int) -> int:
        """``*RS^m``: acks ``(x, y)`` in transit with ``x <= seq <= y``."""
        return sum(1 for lo, hi in self.c_rs if lo <= seq <= hi)

    # ------------------------------------------------------------------
    # functional updates (return new states)
    # ------------------------------------------------------------------

    def with_sr_added(self, seq: int) -> "SystemState":
        return replace(self, c_sr=tuple(sorted(self.c_sr + (seq,))))

    def with_sr_removed(self, seq: int) -> "SystemState":
        items = list(self.c_sr)
        items.remove(seq)
        return replace(self, c_sr=tuple(items))

    def with_rs_added(self, pair: AckPair) -> "SystemState":
        return replace(self, c_rs=tuple(sorted(self.c_rs + (pair,))))

    def with_rs_removed(self, pair: AckPair) -> "SystemState":
        items = list(self.c_rs)
        items.remove(pair)
        return replace(self, c_rs=tuple(items))

    def replace(self, **changes) -> "SystemState":
        """Functional update; canonicalises the records' implicit prefixes."""
        state = replace(self, **changes)
        return state.canonical()

    def canonical(self) -> "SystemState":
        """Drop record entries subsumed by the implicit prefix."""
        ackd = frozenset(s for s in self.ackd if s >= self.na)
        rcvd = frozenset(s for s in self.rcvd if s >= self.vr)
        if ackd != self.ackd or rcvd != self.rcvd:
            return replace(self, ackd=ackd, rcvd=rcvd)
        return self

    # ------------------------------------------------------------------

    def describe(self) -> str:
        """Compact human-readable rendering, used in witness traces."""
        acks = ",".join(f"({lo},{hi})" for lo, hi in self.c_rs) or "-"
        data = ",".join(str(m) for m in self.c_sr) or "-"
        return (
            f"S[na={self.na} ns={self.ns} ackd={sorted(self.ackd)}] "
            f"R[nr={self.nr} vr={self.vr} rcvd={sorted(self.rcvd)}] "
            f"C_SR[{data}] C_RS[{acks}]"
        )


def initial_state() -> SystemState:
    """The paper's initial state: all counters zero, channels empty."""
    return SystemState(
        na=0,
        ns=0,
        nr=0,
        vr=0,
        ackd=frozenset(),
        rcvd=frozenset(),
        c_sr=(),
        c_rs=(),
    )
