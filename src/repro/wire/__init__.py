"""Byte-level wire format: checksummed frames and bit-error links."""

from repro.wire.codec import (
    MAX_WIRE_SEQ,
    CorruptFrame,
    FrameError,
    decode_message,
    encode_message,
    frame_overhead,
)
from repro.wire.framed import FramedChannel

__all__ = [
    "encode_message",
    "decode_message",
    "frame_overhead",
    "CorruptFrame",
    "FrameError",
    "MAX_WIRE_SEQ",
    "FramedChannel",
]
