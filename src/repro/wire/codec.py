"""Byte-level wire format for protocol messages.

The paper's Section V result — only ``2w`` distinct sequence numbers ever
travel between the processes — is what makes a *fixed-width header field*
possible: a window of 8 needs a 4-bit sequence field, forever, regardless
of how much data flows.  This module makes that concrete: it frames
protocol messages into bytes with a CRC-32 trailer, so the simulated
channels can carry real octets and real bit errors.

Frame layout (big-endian):

    offset  size  field
    0       1     frame type: 0x01 data, 0x02 block ack
    1       2     wire sequence number (data) / block lo (ack)
    3       2     attempt counter (data, diagnostic) / block hi (ack)
    5       2     payload length L (data; 0 for acks)
    7       L     payload bytes
    7+L     4     CRC-32 over bytes [0, 7+L)

A frame whose CRC does not match raises :class:`CorruptFrame`; the framed
channel treats that as loss — exactly how a real link turns bit errors
into the paper's loss model.  Sequence numbers are carried in 16 bits,
which bounds the supported wire domain at 65536 (windows up to 16384 with
``K = 2``); the codec validates against the domain it is built with.
"""

from __future__ import annotations

import struct
import zlib
from typing import Union

from repro.core.messages import BlockAck, DataMessage, FlowEnvelope

__all__ = [
    "CorruptFrame",
    "FrameError",
    "encode_message",
    "decode_message",
    "frame_overhead",
    "MAX_WIRE_SEQ",
    "MAX_FLOW_ID",
]

_TYPE_DATA = 0x01
_TYPE_ACK = 0x02
_TYPE_MUX = 0x03  # flow envelope: header + complete inner frame as payload
_HEADER = struct.Struct(">BHHH")
_CRC = struct.Struct(">I")

#: sequence numbers are carried in 16 bits
MAX_WIRE_SEQ = 0xFFFF

#: flow identifiers share the 16-bit header field layout
MAX_FLOW_ID = 0xFFFF

#: fixed bytes added around a payload: header + CRC trailer
FRAME_OVERHEAD = _HEADER.size + _CRC.size


class FrameError(ValueError):
    """A message cannot be encoded into a frame."""


class CorruptFrame(ValueError):
    """A frame failed validation (bad CRC, length, or type)."""


def frame_overhead() -> int:
    """Bytes of framing around each payload (header + CRC)."""
    return FRAME_OVERHEAD


def _check_seq(value: int, what: str) -> None:
    if not 0 <= value <= MAX_WIRE_SEQ:
        raise FrameError(f"{what} {value} does not fit the 16-bit field")


def encode_message(
    message: Union[DataMessage, BlockAck, FlowEnvelope],
) -> bytes:
    """Serialize a protocol message into a checksummed frame.

    A :class:`~repro.core.messages.FlowEnvelope` becomes a ``0x03`` frame
    whose payload is the complete inner frame (header + CRC); the outer
    CRC covers the whole envelope, so a bit flip anywhere discards the
    envelope as one unit — a multiplexed link never misdelivers a
    damaged frame to the wrong flow.
    """
    if isinstance(message, FlowEnvelope):
        _check_seq(message.flow, "flow identifier")
        inner = encode_message(message.message)
        if len(inner) > 0xFFFF:
            raise FrameError(
                f"inner frame of {len(inner)} bytes exceeds the envelope field"
            )
        # the per-flow envelope counter is diagnostic and unbounded in
        # memory; on the wire it wraps into the 16-bit field
        body = _HEADER.pack(
            _TYPE_MUX, message.flow, message.fseq & MAX_WIRE_SEQ, len(inner)
        ) + inner
        return body + _CRC.pack(zlib.crc32(body))
    if isinstance(message, DataMessage):
        payload = message.payload if message.payload is not None else b""
        if not isinstance(payload, (bytes, bytearray)):
            raise FrameError(
                f"framed payloads must be bytes, got {type(payload).__name__}"
            )
        _check_seq(message.seq, "data sequence number")
        _check_seq(message.attempt, "attempt counter")
        if len(payload) > 0xFFFF:
            raise FrameError(f"payload of {len(payload)} bytes exceeds 64 KiB")
        body = _HEADER.pack(
            _TYPE_DATA, message.seq, message.attempt, len(payload)
        ) + bytes(payload)
    elif isinstance(message, BlockAck):
        _check_seq(message.lo, "ack lower bound")
        _check_seq(message.hi, "ack upper bound")
        body = _HEADER.pack(_TYPE_ACK, message.lo, message.hi, 0)
    else:
        raise FrameError(f"cannot frame {type(message).__name__}")
    return body + _CRC.pack(zlib.crc32(body))


def decode_message(frame: bytes) -> Union[DataMessage, BlockAck, FlowEnvelope]:
    """Parse and validate a frame; raises :class:`CorruptFrame` on damage."""
    if len(frame) < FRAME_OVERHEAD:
        raise CorruptFrame(f"frame of {len(frame)} bytes is shorter than a header")
    body, trailer = frame[:-_CRC.size], frame[-_CRC.size :]
    (expected,) = _CRC.unpack(trailer)
    if zlib.crc32(body) != expected:
        raise CorruptFrame("CRC mismatch")
    frame_type, field_a, field_b, length = _HEADER.unpack_from(body)
    if frame_type == _TYPE_DATA:
        payload = body[_HEADER.size :]
        if len(payload) != length:
            raise CorruptFrame(
                f"length field says {length}, frame carries {len(payload)}"
            )
        return DataMessage(seq=field_a, payload=payload, attempt=field_b)
    if frame_type == _TYPE_ACK:
        if length != 0 or len(body) != _HEADER.size:
            raise CorruptFrame("ack frame carries unexpected payload")
        return BlockAck(lo=field_a, hi=field_b)
    if frame_type == _TYPE_MUX:
        inner = body[_HEADER.size :]
        if len(inner) != length:
            raise CorruptFrame(
                f"envelope length field says {length}, frame carries {len(inner)}"
            )
        return FlowEnvelope(
            flow=field_a, fseq=field_b, message=decode_message(inner)
        )
    raise CorruptFrame(f"unknown frame type 0x{frame_type:02x}")
