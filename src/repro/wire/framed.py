"""A channel that carries frames of bytes and suffers bit errors.

:class:`FramedChannel` wraps a plain :class:`~repro.channel.channel.Channel`:
protocol messages are encoded to checksummed byte frames on send, bits
are flipped in transit according to a bit-error rate, and frames that
fail validation on arrival are discarded.  To the endpoints it looks
exactly like a message channel — which is the point: **a real noisy link
implements the paper's lossy-channel abstraction**, with the CRC turning
corruption into clean loss.

The wrapper re-exposes the inner channel's statistics and in-flight
inspection so the rest of the library (runner, monitors, oracle senders)
works unchanged, and adds corruption counters of its own.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterator, Optional

from repro.channel.channel import Channel
from repro.wire.codec import CorruptFrame, decode_message, encode_message

__all__ = ["FramedChannel"]


class FramedChannel:
    """Byte-framing wrapper around a message channel.

    Parameters
    ----------
    inner:
        The underlying channel (delay/loss/aging apply per frame).
    bit_error_rate:
        Probability that any single bit of a frame is flipped in
        transit.  Frame corruption probability is then
        ``1 - (1 - ber)^(8 * frame_len)``.
    rng:
        Random stream for corruption draws.
    """

    def __init__(
        self,
        inner: Channel,
        bit_error_rate: float = 0.0,
        rng: Optional[random.Random] = None,
        name: Optional[str] = None,
    ) -> None:
        if not 0.0 <= bit_error_rate <= 1.0:
            raise ValueError(
                f"bit_error_rate must be in [0, 1], got {bit_error_rate}"
            )
        self.inner = inner
        self._name = name
        self.bit_error_rate = bit_error_rate
        self.rng = rng if rng is not None else random.Random(0)
        self.corrupted = 0  # frames damaged in transit
        self.discarded = 0  # frames dropped by CRC validation
        self.bytes_sent = 0
        self._receiver: Optional[Callable[[Any], None]] = None
        inner.connect(self._on_frame)

    # -- channel interface -------------------------------------------------

    def connect(self, receiver: Callable[[Any], None]) -> None:
        self._receiver = receiver

    def send(self, message: Any) -> None:
        frame = encode_message(message)
        self.bytes_sent += len(frame)
        self.inner.send(frame)

    def add_observer(self, observer: Callable[[str, Any], None]) -> None:
        """Observers see *decoded* messages, as on a plain channel.

        Frames are decoded from their pre-corruption stored form, so the
        observer stream reflects the logical message flow; a frame later
        discarded by CRC still produces a "deliver" event here, which is
        the correct multiset semantics (the copy left the channel).
        """

        def decoding(kind: str, frame: Any) -> None:
            try:
                observer(kind, decode_message(frame))
            except CorruptFrame:  # pragma: no cover - stored frames intact
                pass

        self.inner.add_observer(decoding)

    # -- delivery path -------------------------------------------------------

    def _on_frame(self, frame: bytes) -> None:
        if self._receiver is None:
            raise RuntimeError("framed channel has no receiver connected")
        damaged = self._corrupt(frame)
        try:
            message = decode_message(damaged)
        except CorruptFrame:
            self.discarded += 1
            return
        self._receiver(message)

    def _corrupt(self, frame: bytes) -> bytes:
        if self.bit_error_rate <= 0.0:
            return frame
        if self.bit_error_rate >= 1.0:
            return bytes(b ^ 0xFF for b in frame)
        # geometric skipping: visit exactly the flipped bit positions,
        # O(flips) instead of O(total_bits) draws per frame
        import math

        total_bits = len(frame) * 8
        log_keep = math.log(1.0 - self.bit_error_rate)
        damaged: Optional[bytearray] = None
        position = -1
        while True:
            draw = self.rng.random()
            gap = int(math.log(1.0 - draw) / log_keep) if draw > 0 else 0
            position += gap + 1
            if position >= total_bits:
                break
            if damaged is None:
                damaged = bytearray(frame)
                self.corrupted += 1
            damaged[position // 8] ^= 1 << (position % 8)
        return bytes(damaged) if damaged is not None else frame

    # -- passthroughs so the rest of the library works unchanged -----------

    @property
    def sim(self):
        return self.inner.sim

    @property
    def stats(self):
        return self.inner.stats

    @property
    def name(self) -> str:
        """This link's label: its own name when given, else the inner's.

        :meth:`~repro.sim.runner.LinkSpec.build` names the wrapper with
        the link label and the raw channel with a ``.raw`` suffix, so no
        two channel objects in a run ever share a trace/obs label.
        """
        return self._name if self._name is not None else self.inner.name

    @property
    def is_empty(self) -> bool:
        return self.inner.is_empty

    @property
    def in_flight_count(self) -> int:
        return self.inner.in_flight_count

    def in_flight(self) -> Iterator[Any]:
        """In-flight *decoded* messages (undecodable frames skipped)."""
        for frame in self.inner.in_flight():
            try:
                yield decode_message(frame)
            except CorruptFrame:  # pragma: no cover - frames are intact here
                continue

    def count_matching(self, predicate: Callable[[Any], bool]) -> int:
        return sum(1 for message in self.in_flight() if predicate(message))

    @property
    def effective_max_lifetime(self) -> Optional[float]:
        return self.inner.effective_max_lifetime

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FramedChannel({self.inner!r}, ber={self.bit_error_rate})"


# framed links must forward the complete harness channel surface
from repro.channel.surface import ChannelSurface  # noqa: E402  (cycle-free)

ChannelSurface.register(FramedChannel)
