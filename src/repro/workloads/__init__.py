"""Application traffic sources for driving protocol senders."""

from repro.workloads.sources import (
    BurstySource,
    GreedySource,
    PoissonSource,
    ReplaySource,
    Source,
)

__all__ = [
    "Source",
    "GreedySource",
    "PoissonSource",
    "BurstySource",
    "ReplaySource",
]
