"""Application traffic sources that drive a protocol sender.

A source decides *when* payloads are handed to the sender; the sender's
window decides when they may actually be transmitted.  Sources interact
with any :class:`~repro.protocols.base.SenderEndpoint` through two hooks:

* they call ``sender.submit(payload)`` while ``sender.can_accept``;
* they register on ``sender.on_window_open`` so queued work resumes the
  moment acknowledgments reopen the window.

Payloads are ``(index, tag)`` tuples by default so the runner can verify
exactly-once in-order delivery end to end.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Any, Iterable, List, Optional

from repro.protocols.base import SenderEndpoint
from repro.sim.engine import Simulator

__all__ = [
    "Source",
    "GreedySource",
    "PoissonSource",
    "BurstySource",
    "ReplaySource",
]


class Source(ABC):
    """Base class for traffic sources."""

    def __init__(self, total: int) -> None:
        if total < 0:
            raise ValueError(f"total must be non-negative, got {total}")
        self.total = total
        self.submitted: List[Any] = []
        self.sim: Optional[Simulator] = None
        self.sender: Optional[SenderEndpoint] = None

    def attach(self, sim: Simulator, sender: SenderEndpoint) -> None:
        """Bind to the simulator and sender, and start generating."""
        self.sim = sim
        self.sender = sender
        sender.on_window_open = self._on_window_open
        self._start()

    @property
    def exhausted(self) -> bool:
        """True once every payload has been handed to the sender."""
        return len(self.submitted) >= self.total

    @property
    def _bound_sim(self) -> Simulator:
        if self.sim is None:
            raise RuntimeError("source used before attach()")
        return self.sim

    @property
    def _bound_sender(self) -> SenderEndpoint:
        if self.sender is None:
            raise RuntimeError("source used before attach()")
        return self.sender

    def _make_payload(self) -> Any:
        return ("msg", len(self.submitted))

    def _submit_one(self) -> None:
        payload = self._make_payload()
        self.submitted.append(payload)
        self._bound_sender.submit(payload)

    @abstractmethod
    def _start(self) -> None:
        """Begin generating traffic (called from :meth:`attach`)."""

    @abstractmethod
    def _on_window_open(self) -> None:
        """Called whenever the sender's window reopens."""


class GreedySource(Source):
    """Saturates the sender: submits whenever the window is open.

    This is the workload for every throughput experiment — with a greedy
    source the protocol itself (window, acks, retransmissions) is the only
    thing limiting goodput.
    """

    def _start(self) -> None:
        self._fill()

    def _on_window_open(self) -> None:
        self._fill()

    def _fill(self) -> None:
        while not self.exhausted and self._bound_sender.can_accept:
            self._submit_one()


class PoissonSource(Source):
    """Payloads arrive as a Poisson process of the given ``rate``.

    Arrivals finding a closed window queue and drain on window-open, so
    the offered load is preserved even through loss-recovery stalls.
    """

    def __init__(self, total: int, rate: float, rng: random.Random) -> None:
        super().__init__(total)
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = rate
        self.rng = rng
        self._queued = 0
        self._arrivals_scheduled = 0

    def _start(self) -> None:
        self._schedule_next_arrival()

    def _schedule_next_arrival(self) -> None:
        if self._arrivals_scheduled >= self.total:
            return
        self._arrivals_scheduled += 1
        gap = self.rng.expovariate(self.rate)
        self._bound_sim.schedule(gap, self._on_arrival)

    def _on_arrival(self) -> None:
        self._queued += 1
        self._drain()
        self._schedule_next_arrival()

    def _on_window_open(self) -> None:
        self._drain()

    def _drain(self) -> None:
        while self._queued > 0 and not self.exhausted and self._bound_sender.can_accept:
            self._queued -= 1
            self._submit_one()


class ReplaySource(Source):
    """Replays an explicit arrival-time schedule (trace-driven workload).

    ``arrivals`` is a sorted sequence of virtual times; one payload
    arrives at each.  This is how measured traces or adversarially
    crafted schedules are fed through the protocols, and how a workload
    can be replayed bit-identically across protocol variants.
    """

    def __init__(self, arrivals: Iterable[float]) -> None:
        times = [float(t) for t in arrivals]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("arrival times must be non-decreasing")
        if times and times[0] < 0:
            raise ValueError("arrival times must be non-negative")
        self.arrivals = times
        self._queued = 0
        super().__init__(total=len(times))

    def _start(self) -> None:
        for when in self.arrivals:
            self._bound_sim.schedule(when, self._on_arrival)

    def _on_arrival(self) -> None:
        self._queued += 1
        self._drain()

    def _on_window_open(self) -> None:
        self._drain()

    def _drain(self) -> None:
        while self._queued > 0 and not self.exhausted and self._bound_sender.can_accept:
            self._queued -= 1
            self._submit_one()


class BurstySource(Source):
    """On/off traffic: bursts of ``burst_size`` arrivals, then silence.

    Bursts are where block acknowledgment shines (one ack per burst), so
    this source is the E4 ack-overhead workload.
    """

    def __init__(self, total: int, burst_size: int, gap: float) -> None:
        super().__init__(total)
        if burst_size <= 0:
            raise ValueError(f"burst_size must be positive, got {burst_size}")
        if gap < 0:
            raise ValueError(f"gap must be non-negative, got {gap}")
        self.burst_size = burst_size
        self.gap = gap
        self._queued = 0
        self._generated = 0

    def _start(self) -> None:
        self._burst()

    def _burst(self) -> None:
        if self._generated >= self.total:
            return
        take = min(self.burst_size, self.total - self._generated)
        self._generated += take
        self._queued += take
        self._drain()
        if self._generated < self.total:
            self._bound_sim.schedule(self.gap, self._burst)

    def _on_window_open(self) -> None:
        self._drain()

    def _drain(self) -> None:
        while self._queued > 0 and not self.exhausted and self._bound_sender.can_accept:
            self._queued -= 1
            self._submit_one()
