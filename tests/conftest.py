"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.sim.engine import ENGINES, Simulator, make_simulator


@pytest.fixture(params=ENGINES)
def sim(request) -> Simulator:
    """A fresh simulator — parametrized over every engine implementation.

    Every engine-semantics test in ``test_sim_engine.py`` (ordering,
    ties, cancellation, budgets, ``run_while``) runs once per engine, so
    the fast calendar-queue engine is held to the heap engine's contract
    line by line.
    """
    return make_simulator(request.param)


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG."""
    return random.Random(12345)


def drain(sim: Simulator, max_events: int = 1_000_000) -> None:
    """Run a simulator until its queue is empty (guarded)."""
    sim.run(max_events=max_events)
