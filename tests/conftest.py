"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.sim.engine import Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG."""
    return random.Random(12345)


def drain(sim: Simulator, max_events: int = 1_000_000) -> None:
    """Run a simulator until its queue is empty (guarded)."""
    sim.run(max_events=max_events)
