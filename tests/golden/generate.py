"""Regenerate the golden decision-trace recordings.

Run from the repository root with the code you want to pin::

    PYTHONPATH=src python tests/golden/generate.py

The recordings pin the behaviour-defining projection of each protocol's
trace (``TraceRecorder.decision_trace``) for representative E1/E3/E5
quick configurations.  They were generated with the pre-``window_core``
protocol implementations; the window-core refactor must reproduce every
one of them byte-for-byte (see ``tests/test_golden_traces.py``).
"""

from __future__ import annotations

import json
import pathlib

from repro.channel.impairments import ScriptedLoss
from repro.experiments.common import fifo_link, lossy_link
from repro.protocols.registry import make_pair
from repro.sim.runner import LinkSpec, run_transfer
from repro.workloads.sources import GreedySource

GOLDEN_PATH = pathlib.Path(__file__).with_name("decision_traces.json")

#: the protocols the window-core refactor touches
PROTOCOLS = (
    "blockack",
    "blockack-simple",
    "blockack-bounded",
    "gobackn",
    "selective-repeat",
    "tcp-sack",
)


def golden_cases():
    """(case_id, protocol, run_kwargs) for every pinned configuration.

    Three regimes, mirroring the quick configs of E1 (lossless FIFO
    pipelining), E3 (Bernoulli loss on both links), and E5 (a scripted
    lost acknowledgment forcing timeout recovery).
    """
    cases = []
    for protocol in PROTOCOLS:
        cases.append(
            (
                f"e1/{protocol}",
                protocol,
                dict(
                    window=6,
                    total=40,
                    forward=fifo_link(),
                    reverse=fifo_link(),
                    seed=11,
                ),
            )
        )
        for seed in (11, 23):
            cases.append(
                (
                    f"e3/{protocol}/s{seed}",
                    protocol,
                    dict(
                        window=8,
                        total=60,
                        forward=lossy_link(0.05, spread=0.0),
                        reverse=lossy_link(0.05, spread=0.0),
                        seed=seed,
                    ),
                )
            )
        cases.append(
            (
                f"e5/{protocol}",
                protocol,
                dict(
                    window=8,
                    total=16,
                    forward=fifo_link(),
                    reverse=LinkSpec(
                        delay=fifo_link().delay, loss=ScriptedLoss({0})
                    ),
                    seed=0,
                ),
            )
        )
    return cases


def record_case(
    protocol: str,
    window: int,
    total: int,
    forward,
    reverse,
    seed,
    engine: str = "default",
):
    """One traced transfer; returns the JSON-safe decision trace.

    ``engine`` selects the event loop; the recordings are always
    *generated* on the default engine, and the fast engine is required to
    reproduce them exactly (see ``test_golden_traces.py``).
    """
    sender, receiver = make_pair(protocol, window=window)
    result = run_transfer(
        sender,
        receiver,
        GreedySource(total),
        forward=forward,
        reverse=reverse,
        seed=seed,
        trace=True,
        max_time=10_000.0,
        engine=engine,
    )
    assert result.completed and result.in_order, (
        f"golden run must complete cleanly: {protocol}: {result.summary()}"
    )
    assert result.trace.dropped_events == 0
    return [
        [time, actor, kind.value, seq, seq_hi]
        for time, actor, kind, seq, seq_hi in result.trace.decision_trace()
    ]


def main() -> None:
    recordings = {}
    for case_id, protocol, kwargs in golden_cases():
        recordings[case_id] = record_case(protocol, **kwargs)
        print(f"{case_id}: {len(recordings[case_id])} decisions")
    GOLDEN_PATH.write_text(json.dumps(recordings, separators=(",", ":")))
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
