"""Regenerate the golden multi-flow session decision-trace recordings.

Run from the repository root with the code you want to pin::

    PYTHONPATH=src python tests/golden/generate_sessions.py

The recordings pin the behaviour-defining projection of a multi-flow
session's trace (``TraceRecorder.decision_trace``) for the E15 quick
configurations.  They were generated *before* the link-arbiter refactor
(``repro.channel.arbiter``); a session run with the default ``fifo``
scheduler and infinite link capacity must reproduce every one of them
byte-for-byte on both engines (see ``tests/test_session_golden.py``) —
the arbiter's pass-through path is required to be invisible.
"""

from __future__ import annotations

import json
import pathlib

from repro.experiments.common import lossy_link
from repro.sim.host import run_flows, uniform_flows

SESSION_GOLDEN_PATH = pathlib.Path(__file__).with_name("session_traces.json")

#: the protocols E15 sweeps over the shared link
PROTOCOLS = ("blockack", "gobackn", "selective-repeat")

#: mirrors the E15 quick tier: window 6, greedy demand, fixed horizon
WINDOW = 6
OFFERED = 5_000
HORIZON = 60.0
FLOW_COUNTS = (2, 4)
LOSS_RATES = (0.0, 0.1)
SEED = 11


def golden_session_cases():
    """(case_id, run_kwargs) for every pinned session configuration."""
    cases = []
    for protocol in PROTOCOLS:
        for flows in FLOW_COUNTS:
            for loss in LOSS_RATES:
                cases.append(
                    (
                        f"e15/{protocol}/f{flows}/loss{loss}",
                        dict(
                            protocol=protocol,
                            flows=flows,
                            loss=loss,
                        ),
                    )
                )
    return cases


def record_session_case(
    protocol: str, flows: int, loss: float, engine: str = "default", **host_kwargs
):
    """One traced session; returns the JSON-safe decision trace."""
    session = run_flows(
        uniform_flows(protocol, flows, WINDOW, OFFERED),
        forward=lossy_link(loss),
        reverse=lossy_link(loss),
        seed=SEED,
        max_time=HORIZON,
        trace=True,
        engine=engine,
        **host_kwargs,
    )
    assert session.trace is not None and session.trace.dropped_events == 0
    assert all(flow.ordered_prefix for flow in session.flows), (
        f"golden session must keep every flow's prefix in order: {protocol}"
    )
    return [
        [time, actor, kind.value, seq, seq_hi]
        for time, actor, kind, seq, seq_hi in session.trace.decision_trace()
    ]


def main() -> None:
    recordings = {}
    for case_id, kwargs in golden_session_cases():
        recordings[case_id] = record_session_case(**kwargs)
        print(f"{case_id}: {len(recordings[case_id])} decisions")
    SESSION_GOLDEN_PATH.write_text(json.dumps(recordings, separators=(",", ":")))
    print(f"wrote {SESSION_GOLDEN_PATH}")


if __name__ == "__main__":
    main()
