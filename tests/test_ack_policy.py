"""Tests for receiver acknowledgment policies."""

import pytest

from repro.protocols.ack_policy import (
    CountingAckPolicy,
    DelayedAckPolicy,
    EagerAckPolicy,
)


class TestEagerAckPolicy:
    def test_flushes_immediately(self, sim):
        flushes = []
        policy = EagerAckPolicy()
        policy.attach(sim, lambda: flushes.append(sim.now))
        policy.on_update(pending=1)
        assert flushes == [0.0]

    def test_no_flush_when_nothing_pending(self, sim):
        flushes = []
        policy = EagerAckPolicy()
        policy.attach(sim, lambda: flushes.append(sim.now))
        policy.on_update(pending=0)
        assert flushes == []

    def test_zero_latency(self):
        assert EagerAckPolicy().max_latency == 0.0


class TestDelayedAckPolicy:
    def test_flush_after_delay(self, sim):
        flushes = []
        policy = DelayedAckPolicy(0.5)
        policy.attach(sim, lambda: flushes.append(sim.now))
        policy.on_update(pending=1)
        sim.run()
        assert flushes == [0.5]

    def test_coalesces_multiple_updates(self, sim):
        flushes = []
        policy = DelayedAckPolicy(1.0)
        policy.attach(sim, lambda: flushes.append(sim.now))
        policy.on_update(pending=1)
        sim.schedule(0.3, policy.on_update, 2)
        sim.schedule(0.6, policy.on_update, 3)
        sim.run()
        assert flushes == [1.0]  # one flush covers all three

    def test_max_latency_is_delay(self):
        assert DelayedAckPolicy(0.7).max_latency == 0.7

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            DelayedAckPolicy(-0.1)

    def test_rearms_after_flush(self, sim):
        flushes = []
        policy = DelayedAckPolicy(0.5)
        policy.attach(sim, lambda: flushes.append(sim.now))
        policy.on_update(pending=1)
        sim.schedule(2.0, policy.on_update, 1)
        sim.run()
        assert flushes == [0.5, 2.5]


class TestCountingAckPolicy:
    def test_threshold_triggers_immediately(self, sim):
        flushes = []
        policy = CountingAckPolicy(threshold=3, max_delay=10.0)
        policy.attach(sim, lambda: flushes.append(sim.now))
        policy.on_update(pending=3)
        assert flushes == [0.0]

    def test_below_threshold_waits_for_backstop(self, sim):
        flushes = []
        policy = CountingAckPolicy(threshold=3, max_delay=2.0)
        policy.attach(sim, lambda: flushes.append(sim.now))
        policy.on_update(pending=1)
        sim.run()
        assert flushes == [2.0]

    def test_threshold_cancels_backstop(self, sim):
        flushes = []
        policy = CountingAckPolicy(threshold=2, max_delay=5.0)
        policy.attach(sim, lambda: flushes.append(sim.now))
        policy.on_update(pending=1)
        sim.schedule(1.0, policy.on_update, 2)
        sim.run()
        assert flushes == [1.0]  # threshold fired; backstop cancelled

    def test_max_latency_is_backstop(self):
        assert CountingAckPolicy(4, 1.5).max_latency == 1.5

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CountingAckPolicy(0, 1.0)
        with pytest.raises(ValueError):
            CountingAckPolicy(2, -1.0)
