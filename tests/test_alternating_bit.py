"""Tests for the alternating-bit corner of the protocol (paper Section VI)."""

from repro.channel.delay import ConstantDelay
from repro.channel.impairments import BernoulliLoss, ScriptedLoss
from repro.protocols.alternating_bit import (
    make_alternating_bit_receiver,
    make_alternating_bit_sender,
)
from repro.sim.runner import LinkSpec, run_transfer
from repro.trace.events import EventKind
from repro.workloads.sources import GreedySource


def run_ab(total=50, forward=None, reverse=None, seed=0, trace=False):
    return run_transfer(
        make_alternating_bit_sender(), make_alternating_bit_receiver(),
        GreedySource(total), forward=forward, reverse=reverse, seed=seed,
        trace=trace, max_time=100_000.0,
    )


class TestAlternatingBit:
    def test_lossless_in_order(self):
        result = run_ab()
        assert result.completed and result.in_order

    def test_stop_and_wait_throughput(self):
        result = run_ab(total=100)
        assert abs(result.throughput - 0.5) < 0.02  # one message per RTT=2

    def test_wire_uses_only_two_values(self):
        result = run_ab(total=20, trace=True)
        # sender's window is 1, domain 2: every ack is (b, b) with b in {0,1}
        acks = result.trace.filter(kind=EventKind.SEND_ACK)
        assert acks
        # trace records true numbers; the wire values are seq mod 2
        sender = make_alternating_bit_sender()
        assert sender.numbering.domain_size == 2

    def test_survives_loss_both_directions(self):
        link = lambda: LinkSpec(
            delay=ConstantDelay(1.0), loss=BernoulliLoss(0.2)
        )
        result = run_ab(total=30, forward=link(), reverse=link(), seed=3)
        assert result.completed and result.in_order

    def test_lost_data_retransmitted(self):
        result = run_transfer(
            make_alternating_bit_sender(), make_alternating_bit_receiver(),
            GreedySource(3),
            forward=LinkSpec(delay=ConstantDelay(1.0), loss=ScriptedLoss({0})),
            reverse=LinkSpec(delay=ConstantDelay(1.0)),
            seed=0, trace=True, max_time=1000.0,
        )
        assert result.completed and result.in_order
        assert result.trace.filter(kind=EventKind.RESEND_DATA)

    def test_lost_ack_triggers_dup_ack(self):
        result = run_transfer(
            make_alternating_bit_sender(), make_alternating_bit_receiver(),
            GreedySource(3),
            forward=LinkSpec(delay=ConstantDelay(1.0)),
            reverse=LinkSpec(delay=ConstantDelay(1.0), loss=ScriptedLoss({0})),
            seed=0, trace=True, max_time=1000.0,
        )
        assert result.completed and result.in_order
        assert result.trace.filter(kind=EventKind.RESEND_ACK)
