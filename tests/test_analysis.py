"""Tests for statistics, replication, and table rendering."""

import pytest

from repro.analysis.metrics import extract, replicate
from repro.analysis.report import format_cell, render_table
from repro.analysis.stats import percentile, summarize
from repro.protocols.blockack import BlockAckReceiver, BlockAckSender
from repro.sim.runner import run_transfer
from repro.workloads.sources import GreedySource


class TestSummarize:
    def test_single_value(self):
        summary = summarize([5.0])
        assert summary.mean == 5.0
        assert summary.ci95 == 0.0
        assert summary.n == 1

    def test_mean_and_stdev(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.mean == pytest.approx(2.0)
        assert summary.stdev == pytest.approx(1.0)
        assert summary.minimum == 1.0 and summary.maximum == 3.0

    def test_ci_uses_student_t(self):
        # n=3, dof=2: t=4.303, half-width = 4.303 * 1 / sqrt(3)
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.ci95 == pytest.approx(4.303 / 3**0.5, rel=1e-3)

    def test_interval_overlap(self):
        a = summarize([1.0, 1.1, 0.9])
        b = summarize([5.0, 5.1, 4.9])
        assert not a.overlaps(b)
        assert a.overlaps(summarize([1.0, 1.2, 0.8]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_large_sample_falls_back_to_normal(self):
        summary = summarize([float(i % 7) for i in range(200)])
        assert summary.ci95 > 0

    def test_str_format(self):
        assert "n=3" in str(summarize([1.0, 2.0, 3.0]))


class TestPercentile:
    def test_median(self):
        assert percentile([3, 1, 2], 50) == 2.0

    def test_extremes(self):
        assert percentile([1, 2, 3], 0) == 1.0
        assert percentile([1, 2, 3], 100) == 3.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25) == 2.5

    def test_single_value(self):
        assert percentile([7.0], 99) == 7.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 150)


class TestRenderTable:
    def test_alignment_and_rule(self):
        table = render_table(["name", "value"], [("a", 1), ("bbbb", 22)])
        lines = table.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_title_included(self):
        table = render_table(["x"], [(1,)], title="results")
        assert table.startswith("results")

    def test_float_formatting(self):
        assert format_cell(3.14159265) == "3.142"
        assert format_cell(True) == "yes"
        assert format_cell("text") == "text"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [(1,)])


class TestReplicate:
    def _run(self, seed):
        sender = BlockAckSender(4)
        receiver = BlockAckReceiver(4)
        return run_transfer(sender, receiver, GreedySource(40), seed=seed)

    def test_aggregates_default_metrics(self):
        metrics = replicate(self._run, seeds=(1, 2, 3))
        assert metrics["throughput"].n == 3
        assert metrics["goodput_efficiency"].mean == 1.0

    def test_custom_metric_from_stats_dict(self):
        metrics = replicate(self._run, seeds=(1, 2), metrics=("data_sent",))
        assert metrics["data_sent"].mean == 40.0

    def test_extract_unknown_metric(self):
        result = self._run(1)
        with pytest.raises(KeyError):
            extract(result, "nonexistent")

    def test_correctness_enforced(self):
        def broken(seed):
            sender = BlockAckSender(2)
            receiver = BlockAckReceiver(2)
            return run_transfer(
                sender, receiver, GreedySource(1000), seed=seed, max_time=2.0
            )

        with pytest.raises(AssertionError):
            replicate(broken, seeds=(1,))

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(self._run, seeds=())
