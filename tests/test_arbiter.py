"""Unit and property tests for the send-side link arbiter.

The arbiter (:mod:`repro.channel.arbiter`) is the tentpole of the
capacity-limited-link refactor, so its contract is tested directly,
below the mux/host layers: token-bucket pacing, droptail accounting,
scheduler ordering (fifo / wrr / drr), and — via hypothesis — DRR's
grant-conservation and equal-weight fairness properties.  Every test
runs on both engines through the shared ``sim`` fixture.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.arbiter import (
    ArbiterConfig,
    DrrScheduler,
    FifoScheduler,
    LinkArbiter,
    WrrScheduler,
    make_scheduler,
)
from repro.sim.engine import ENGINES, make_simulator

from .conftest import drain


def build(sim, **config):
    """Arbiter whose downstream send records (time, message) grants."""
    grants = []
    arbiter = LinkArbiter(
        sim,
        lambda message: grants.append((sim.now, message)),
        ArbiterConfig(**config),
    )
    return arbiter, grants


class TestConfig:
    def test_inactive_by_default(self):
        config = ArbiterConfig()
        assert config.rate is None and not config.active

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ArbiterConfig(rate=0.0)
        with pytest.raises(ValueError):
            ArbiterConfig(rate=1.0, burst=0.5)
        with pytest.raises(ValueError):
            ArbiterConfig(rate=1.0, scheduler="edf")
        with pytest.raises(ValueError):
            ArbiterConfig(rate=1.0, queue_limit=0)
        with pytest.raises(ValueError):
            ArbiterConfig(rate=1.0, quantum=0.0)

    def test_arbiter_refuses_inactive_config(self, sim):
        with pytest.raises(ValueError):
            LinkArbiter(sim, lambda m: None, ArbiterConfig())

    def test_make_scheduler_dispatch(self):
        backlog = lambda flow: 0  # noqa: E731 - trivial stub
        config = ArbiterConfig(rate=1.0)
        assert isinstance(make_scheduler(config, backlog), FifoScheduler)
        wrr = ArbiterConfig(rate=1.0, scheduler="wrr")
        assert isinstance(make_scheduler(wrr, backlog), WrrScheduler)
        drr = ArbiterConfig(rate=1.0, scheduler="drr")
        assert isinstance(make_scheduler(drr, backlog), DrrScheduler)


class TestTokenPacing:
    def test_burst_then_rate_paced(self, sim):
        """burst=2 sends two frames at t=0, then one per 1/rate."""
        arbiter, grants = build(sim, rate=2.0, burst=2.0)
        arbiter.register(0)
        for n in range(6):
            arbiter.submit(0, f"m{n}")
        drain(sim)
        times = [t for t, _ in grants]
        assert times == pytest.approx([0.0, 0.0, 0.5, 1.0, 1.5, 2.0])
        assert [m for _, m in grants] == [f"m{n}" for n in range(6)]

    def test_idle_time_refills_up_to_burst(self, sim):
        """Tokens accrue while idle but never beyond the burst ceiling."""
        arbiter, grants = build(sim, rate=1.0, burst=2.0)
        arbiter.register(0)
        arbiter.submit(0, "a")
        arbiter.submit(0, "b")  # drains the initial burst
        drain(sim)

        def late_burst():
            for n in range(3):
                arbiter.submit(0, f"late{n}")

        sim.schedule(100.0, late_burst)  # long idle: far more than 2 tokens
        drain(sim)
        late_times = [t for t, m in grants if m.startswith("late")]
        assert late_times == pytest.approx([100.0, 100.0, 101.0])

    def test_wait_accounting_matches_grant_times(self, sim):
        arbiter, grants = build(sim, rate=1.0, burst=1.0)
        arbiter.register(0)
        for n in range(4):
            arbiter.submit(0, n)  # granted at t = 0, 1, 2, 3
        drain(sim)
        stats = arbiter.flow_stats(0)
        assert stats.granted == 4
        assert stats.wait_total == pytest.approx(0.0 + 1.0 + 2.0 + 3.0)
        assert stats.as_dict()["mean_wait"] == pytest.approx(1.5)
        assert stats.max_depth == 3  # three waited behind the first


class TestDroptail:
    def test_overflow_drops_at_tail_and_counts(self, sim):
        arbiter, grants = build(sim, rate=1.0, burst=1.0, queue_limit=2)
        arbiter.register(0)
        accepted = [arbiter.submit(0, n) for n in range(5)]
        # first frame is granted instantly (burst token), then the queue
        # holds two; the last two submissions hit the droptail
        assert accepted == [True, True, True, False, False]
        assert arbiter.drops_total == 2
        assert arbiter.flow_stats(0).dropped == 2
        drain(sim)
        assert [m for _, m in grants] == [0, 1, 2]  # drops never send
        assert arbiter.flow_stats(0).granted == 3

    def test_queue_limit_is_per_flow(self, sim):
        arbiter, _ = build(sim, rate=0.5, burst=1.0, queue_limit=1)
        arbiter.register(0)
        arbiter.register(1)
        assert arbiter.submit(0, "a")  # granted (burst)
        assert arbiter.submit(0, "b")  # queued on flow 0
        assert not arbiter.submit(0, "c")  # flow 0 full
        assert arbiter.submit(1, "d")  # flow 1's queue is independent
        assert arbiter.queue_depth(0) == 1
        assert arbiter.queue_depth(1) == 1
        assert list(arbiter.queued(0)) == ["b"]


class TestSchedulerOrdering:
    def submit_backlog(self, arbiter, per_flow):
        """Saturate: one submit per (flow, n), arrival order by n."""
        for n in range(per_flow):
            for flow in sorted(f for f in (0, 1)):
                arbiter.submit(flow, (flow, n))

    def test_fifo_serves_global_arrival_order(self, sim):
        arbiter, grants = build(sim, rate=1.0, burst=1.0, scheduler="fifo")
        arbiter.register(0)
        arbiter.register(1)
        # flow 1 enqueues three frames before flow 0's first
        for n in range(3):
            arbiter.submit(1, ("one", n))
        arbiter.submit(0, ("zero", 0))
        drain(sim)
        assert [m for _, m in grants] == [
            ("one", 0), ("one", 1), ("one", 2), ("zero", 0)
        ]

    def test_drr_equal_weights_alternate_despite_skewed_backlog(self, sim):
        arbiter, grants = build(sim, rate=1.0, burst=1.0, scheduler="drr")
        arbiter.register(0, weight=1.0)
        arbiter.register(1, weight=1.0)
        # flow 1 floods 8 frames; flow 0 submits 4; all at t=0
        for n in range(8):
            arbiter.submit(1, ("one", n))
        for n in range(4):
            arbiter.submit(0, ("zero", n))
        drain(sim)
        flows = [m[0] for _, m in grants]
        # while both are backlogged (first 8 grants) service alternates
        # per-flow, not per-frame: 4 each, despite the 8:4 backlog skew
        assert sorted(flows[:8]) == ["one"] * 4 + ["zero"] * 4
        assert flows[8:] == ["one"] * 4  # remainder drains the flood

    def test_drr_weights_split_grants_proportionally(self, sim):
        arbiter, grants = build(sim, rate=1.0, burst=1.0, scheduler="drr")
        arbiter.register(0, weight=2.0)
        arbiter.register(1, weight=1.0)
        for n in range(12):
            arbiter.submit(0, ("heavy", n))
            arbiter.submit(1, ("light", n))
        drain(sim)
        flows = [m[0] for _, m in grants]
        # while both stay backlogged, weight 2:1 → grants 2:1
        window = flows[:9]
        assert window.count("heavy") == 6 and window.count("light") == 3

    def test_wrr_forfeits_unused_credit(self, sim):
        arbiter, grants = build(
            sim, rate=1.0, burst=1.0, scheduler="wrr"
        )
        arbiter.register(0, weight=3.0)
        arbiter.register(1, weight=1.0)
        # flow 0 has only one frame: it cannot bank its 3-credit turn
        arbiter.submit(0, ("zero", 0))
        for n in range(3):
            arbiter.submit(1, ("one", n))
        drain(sim)
        assert [m for _, m in grants] == [
            ("zero", 0), ("one", 0), ("one", 1), ("one", 2)
        ]


class TestStats:
    def test_stats_dict_uses_string_flow_keys(self, sim):
        """String keys: the dict must survive a JSON round-trip exactly."""
        arbiter, _ = build(sim, rate=1.0)
        arbiter.register(0)
        arbiter.register(1)
        arbiter.submit(0, "a")
        drain(sim)
        stats = arbiter.stats_dict()
        assert set(stats["per_flow"]) == {"0", "1"}
        assert stats["grants_total"] == 1
        assert stats["per_flow"]["0"]["granted"] == 1
        assert stats["per_flow"]["1"]["granted"] == 0

    def test_register_is_idempotent(self, sim):
        arbiter, _ = build(sim, rate=1.0)
        first = arbiter.register(0)
        arbiter.submit(0, "a")
        again = arbiter.register(0)
        assert again is first and again.enqueued == 1


class TestDrrProperties:
    """Hypothesis: DRR conserves grants and is fair under equal weights."""

    @settings(max_examples=40, deadline=None)
    @given(
        engine=st.sampled_from(ENGINES),
        nflows=st.integers(min_value=2, max_value=4),
        extra=st.lists(
            st.integers(min_value=0, max_value=25),
            min_size=2,
            max_size=4,
        ),
        rate=st.floats(min_value=0.5, max_value=8.0),
        burst=st.floats(min_value=1.0, max_value=6.0),
    )
    def test_drr_conserves_grants_and_splits_evenly(
        self, engine, nflows, extra, rate, burst
    ):
        sim = make_simulator(engine)
        grants = []
        arbiter = LinkArbiter(
            sim,
            lambda message: grants.append(message),
            ArbiterConfig(
                rate=rate, burst=burst, scheduler="drr", queue_limit=None
            ),
        )
        floor = 20  # every flow backlogs at least this many frames
        counts = [floor + extra[n % len(extra)] for n in range(nflows)]
        for flow in range(nflows):
            arbiter.register(flow, weight=1.0)
        # interleave submissions so the initial burst tokens don't all
        # land on one flow before the others have any backlog (the
        # fairness property is about scheduling, not arrival order)
        for n in range(max(counts)):
            for flow, count in enumerate(counts):
                if n < count:
                    arbiter.submit(flow, flow)
        drain(sim)

        # conservation: every submitted frame is granted exactly once
        # (no drops with queue_limit=None), in every flow's accounting
        assert arbiter.grants_total == sum(counts) == len(grants)
        assert arbiter.drops_total == 0
        for flow, count in enumerate(counts):
            stats = arbiter.flow_stats(flow)
            assert stats.enqueued == stats.granted == count
            assert arbiter.queue_depth(flow) == 0

        # equal-weight fairness: while every flow is still backlogged
        # (the first nflows*floor grants), shares are even — Jain >= 0.99
        window = grants[: nflows * floor]
        shares = [window.count(flow) for flow in range(nflows)]
        jain = sum(shares) ** 2 / (nflows * sum(s * s for s in shares))
        assert jain >= 0.99
