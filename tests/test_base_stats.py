"""Tests for the endpoint statistics containers and derived metrics."""

from repro.protocols.base import ReceiverStats, SenderStats


class TestSenderStats:
    def test_efficiency(self):
        stats = SenderStats(data_sent=10, acked=8)
        assert stats.efficiency == 0.8

    def test_efficiency_with_no_sends(self):
        assert SenderStats().efficiency == 0.0

    def test_as_dict_round_trips_counters(self):
        stats = SenderStats(
            submitted=5, data_sent=7, retransmissions=2,
            acks_received=4, stale_acks=1, timeouts_fired=2, acked=5,
        )
        as_dict = stats.as_dict()
        assert as_dict["data_sent"] == 7
        assert as_dict["retransmissions"] == 2
        assert as_dict["stale_acks"] == 1


class TestReceiverStats:
    def test_acks_per_delivery(self):
        stats = ReceiverStats(acks_sent=5, delivered=10)
        assert stats.acks_per_delivery == 0.5

    def test_acks_per_delivery_with_nothing_delivered(self):
        assert ReceiverStats(acks_sent=5).acks_per_delivery == 0.0

    def test_as_dict_keys(self):
        keys = set(ReceiverStats().as_dict())
        assert {
            "data_received", "duplicates", "redundant", "out_of_order",
            "acks_sent", "delivered", "max_buffered",
        } <= keys
