"""Tests for the byte-exact Section-V bounded endpoints."""

import pytest

from repro.channel.delay import UniformDelay
from repro.channel.impairments import BernoulliLoss
from repro.protocols.blockack_bounded import (
    BoundedBlockAckReceiver,
    BoundedBlockAckSender,
)
from repro.sim.runner import LinkSpec, run_transfer
from repro.workloads.sources import GreedySource


def run_bounded(total=150, w=6, forward=None, reverse=None, seed=0):
    sender = BoundedBlockAckSender(w)
    receiver = BoundedBlockAckReceiver(w)
    return run_transfer(
        sender, receiver, GreedySource(total),
        forward=forward, reverse=reverse, seed=seed,
        collect_payloads=True, max_time=100_000.0,
    )


class TestBoundedTransfer:
    def test_lossless_completes_in_order(self):
        result = run_bounded()
        assert result.completed and result.in_order

    def test_long_transfer_wraps_many_generations(self):
        # 150 messages through a domain of 12: the counters wrap 12+ times
        result = run_bounded(total=150, w=6)
        assert result.completed and result.in_order

    def test_lossy_reordering_transfer(self):
        link = lambda: LinkSpec(
            delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(0.08)
        )
        result = run_bounded(forward=link(), reverse=link(), seed=3)
        assert result.completed and result.in_order

    def test_payloads_arrive_exactly_once(self):
        link = lambda: LinkSpec(
            delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(0.05)
        )
        result = run_bounded(total=100, forward=link(), reverse=link(), seed=4)
        assert result.delivered_payloads == [("msg", i) for i in range(100)]

    def test_window_one(self):
        result = run_bounded(total=40, w=1)
        assert result.completed and result.in_order
        assert abs(result.throughput - 0.5) < 0.05

    def test_no_state_growth(self):
        # protocol state must stay O(w): counters bounded by 2w, rings by w
        sender = BoundedBlockAckSender(4)
        receiver = BoundedBlockAckReceiver(4)
        result = run_transfer(
            sender, receiver, GreedySource(500), seed=0,
        )
        assert result.completed
        assert 0 <= sender.book.na < 8 and 0 <= sender.book.ns < 8
        assert 0 <= receiver.book.nr < 8 and 0 <= receiver.book.vr < 8
        assert len(sender.book._ackd) == 4
        assert len(receiver.book._rcvd) == 4

    def test_attach_requires_timeout(self, sim):
        from repro.channel.channel import Channel

        sender = BoundedBlockAckSender(4)
        with pytest.raises(ValueError):
            sender.attach(sim, Channel(sim))

    def test_wrong_message_types_rejected(self, sim):
        from repro.channel.channel import Channel
        from repro.core.messages import BlockAck, DataMessage

        sender = BoundedBlockAckSender(4, timeout_period=3.0)
        sender.attach(sim, Channel(sim))
        with pytest.raises(TypeError):
            sender.on_message(DataMessage(0))
        receiver = BoundedBlockAckReceiver(4)
        receiver.attach(sim, Channel(sim))
        with pytest.raises(TypeError):
            receiver.on_message(BlockAck(0, 0))
