"""Behavioural tests for the block-acknowledgment DES endpoints."""

import pytest

from repro.channel.delay import ConstantDelay, UniformDelay
from repro.channel.impairments import BernoulliLoss, ScriptedLoss
from repro.core.numbering import ModularNumbering
from repro.protocols.ack_policy import DelayedAckPolicy
from repro.protocols.blockack import (
    BlockAckReceiver,
    BlockAckSender,
    safe_timeout_period,
)
from repro.sim.runner import LinkSpec, run_transfer
from repro.trace.events import EventKind
from repro.workloads.sources import GreedySource


def lossy_jitter(p=0.05):
    return LinkSpec(delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(p))


def run_pair(total=200, mode="per_message_safe", numbering=None, w=8,
             forward=None, reverse=None, seed=0, ack_policy=None, **kwargs):
    sender = BlockAckSender(w, numbering=numbering, timeout_mode=mode, **kwargs)
    receiver = BlockAckReceiver(w, numbering=numbering, ack_policy=ack_policy)
    return run_transfer(
        sender, receiver, GreedySource(total),
        forward=forward, reverse=reverse, seed=seed,
        trace=True, max_time=100_000.0,
    )


class TestSafeTimeoutPeriod:
    def test_sum_of_bounds_plus_margin(self):
        assert safe_timeout_period(1.0, 1.0, 0.5, margin=0.1) == 2.6

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            safe_timeout_period(-1.0, 1.0)


class TestLosslessBehaviour:
    def test_completes_in_order(self):
        result = run_pair(total=300)
        assert result.completed and result.in_order

    def test_no_retransmissions_without_loss(self):
        result = run_pair(total=300)
        assert result.sender_stats["retransmissions"] == 0
        assert result.goodput_efficiency == 1.0

    def test_window_pipelining_throughput(self):
        # w=8 over RTT=2 with unit delays: 4 messages per time unit
        result = run_pair(total=400, w=8)
        assert abs(result.throughput - 4.0) < 0.2

    def test_window_one_is_stop_and_wait(self):
        result = run_pair(total=100, w=1)
        assert abs(result.throughput - 0.5) < 0.05


class TestLossRecovery:
    @pytest.mark.parametrize("mode", ["simple", "per_message_safe", "oracle"])
    def test_all_modes_recover(self, mode):
        kwargs = {"timeout_period": 0.25} if mode == "oracle" else {}
        result = run_pair(
            total=300, mode=mode,
            forward=lossy_jitter(), reverse=lossy_jitter(), seed=3, **kwargs
        )
        assert result.completed and result.in_order

    def test_heavy_loss_still_correct(self):
        result = run_pair(
            total=150, forward=lossy_jitter(0.3), reverse=lossy_jitter(0.3),
            seed=5,
        )
        assert result.completed and result.in_order

    def test_asymmetric_loss(self):
        result = run_pair(
            total=150, forward=lossy_jitter(0.0), reverse=lossy_jitter(0.2),
            seed=6,
        )
        assert result.completed and result.in_order

    def test_retransmissions_only_with_loss(self):
        result = run_pair(
            total=200, forward=lossy_jitter(0.1), reverse=lossy_jitter(0.1),
            seed=7,
        )
        assert result.sender_stats["retransmissions"] > 0


class TestBoundedNumbering:
    def test_bounded_wire_values_stay_in_domain(self):
        result = run_pair(
            total=200, numbering=ModularNumbering(8),
            forward=lossy_jitter(), reverse=lossy_jitter(), seed=2,
        )
        assert result.completed and result.in_order

    def test_bounded_equals_unbounded_behaviour(self):
        unbounded = run_pair(
            total=150, forward=lossy_jitter(), reverse=lossy_jitter(), seed=9
        )
        bounded = run_pair(
            total=150, numbering=ModularNumbering(8),
            forward=lossy_jitter(), reverse=lossy_jitter(), seed=9,
        )
        assert bounded.duration == unbounded.duration
        assert bounded.sender_stats == unbounded.sender_stats

    def test_window_one_uses_two_wire_values(self):
        result = run_pair(total=50, numbering=ModularNumbering(1), w=1)
        assert result.completed and result.in_order


class TestPureReorder:
    def test_no_retransmissions_under_reorder_only(self):
        # the headline property: disorder alone never triggers recovery
        link = LinkSpec(delay=UniformDelay(0.1, 1.9))
        result = run_pair(total=400, forward=link, reverse=link, seed=4)
        assert result.completed and result.in_order
        assert result.sender_stats["retransmissions"] == 0

    def test_blocks_form_from_reordering(self):
        link = LinkSpec(delay=UniformDelay(0.1, 1.9))
        result = run_pair(total=400, forward=link, reverse=link, seed=4)
        multi = [
            e for e in result.trace.filter(kind=EventKind.SEND_ACK)
            if e.seq_hi > e.seq
        ]
        assert multi  # at least some acks covered true blocks


class TestDuplicateAckPath:
    def test_lost_block_ack_triggers_dup_acks(self):
        # drop the first ack: the retransmitted data is answered by (v, v)
        sender = BlockAckSender(4, timeout_mode="simple", timeout_period=3.0)
        receiver = BlockAckReceiver(4, ack_policy=DelayedAckPolicy(0.2))
        result = run_transfer(
            sender, receiver, GreedySource(4),
            forward=LinkSpec(delay=ConstantDelay(1.0)),
            reverse=LinkSpec(delay=ConstantDelay(1.0), loss=ScriptedLoss({0})),
            seed=0, trace=True, max_time=1000.0,
        )
        assert result.completed and result.in_order
        dups = result.trace.filter(kind=EventKind.RESEND_ACK)
        assert dups and all(e.seq == e.seq_hi for e in dups)

    def test_receiver_duplicate_counter(self):
        sender = BlockAckSender(4, timeout_mode="simple", timeout_period=3.0)
        receiver = BlockAckReceiver(4, ack_policy=DelayedAckPolicy(0.2))
        result = run_transfer(
            sender, receiver, GreedySource(4),
            forward=LinkSpec(delay=ConstantDelay(1.0)),
            reverse=LinkSpec(delay=ConstantDelay(1.0), loss=ScriptedLoss({0})),
            seed=0, max_time=1000.0,
        )
        assert result.receiver_stats["duplicates"] > 0


class TestSenderValidation:
    def test_unknown_timeout_mode_rejected(self):
        with pytest.raises(ValueError):
            BlockAckSender(4, timeout_mode="bogus")

    def test_attach_requires_timeout_period(self, sim):
        from repro.channel.channel import Channel

        sender = BlockAckSender(4)
        with pytest.raises(ValueError):
            sender.attach(sim, Channel(sim))

    def test_wrong_message_type_rejected(self, sim):
        from repro.channel.channel import Channel
        from repro.core.messages import DataMessage

        sender = BlockAckSender(4, timeout_period=3.0)
        sender.attach(sim, Channel(sim))
        with pytest.raises(TypeError):
            sender.on_message(DataMessage(0))

    def test_oracle_requires_wiring(self, sim):
        from repro.channel.channel import Channel

        sender = BlockAckSender(4, timeout_mode="oracle", timeout_period=0.5)
        channel = Channel(sim)
        channel.connect(lambda m: None)
        sender.attach(sim, channel)
        sender.submit("p")
        with pytest.raises(RuntimeError):
            sim.run()  # poll fires without enable_oracle

    def test_enable_oracle_wrong_mode_rejected(self):
        sender = BlockAckSender(4, timeout_mode="simple", timeout_period=1.0)
        with pytest.raises(RuntimeError):
            sender.enable_oracle(None, None, None)

    def test_receiver_wrong_message_type(self, sim):
        from repro.channel.channel import Channel
        from repro.core.messages import BlockAck

        receiver = BlockAckReceiver(4)
        receiver.attach(sim, Channel(sim))
        with pytest.raises(TypeError):
            receiver.on_message(BlockAck(0, 0))


class TestStaleAckScreen:
    def test_decoded_garbage_discarded(self, sim):
        from repro.channel.channel import Channel
        from repro.core.messages import BlockAck

        sender = BlockAckSender(
            4, numbering=ModularNumbering(4), timeout_period=5.0
        )
        channel = Channel(sim)
        channel.connect(lambda m: None)
        sender.attach(sim, channel)
        sender.submit("p0")  # ns = 1
        # wire ack (3,3) decodes to 3 >= ns: provably stale -> discarded
        sender.on_message(BlockAck(3, 3))
        assert sender.stats.stale_acks == 1
        assert sender.window.na == 0


class TestAggressiveModeIsWasteful:
    def test_aggressive_unbounded_correct_but_wasteful(self):
        # with unbounded numbers the aggressive mode stays correct; it just
        # retransmits buffered messages unnecessarily under loss
        aggressive = run_pair(
            total=200, mode="aggressive",
            forward=lossy_jitter(0.1), reverse=lossy_jitter(0.1), seed=11,
        )
        safe = run_pair(
            total=200, mode="per_message_safe",
            forward=lossy_jitter(0.1), reverse=lossy_jitter(0.1), seed=11,
        )
        assert aggressive.completed and aggressive.in_order
        assert (
            aggressive.sender_stats["data_sent"] >= safe.sender_stats["data_sent"]
        )
