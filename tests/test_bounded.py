"""Unit and lockstep-equivalence tests for the bounded-storage books.

The bounded books (Section V final form) must behave identically to the
unbounded reference bookkeeping under every schedule.  Besides unit tests
for the modular mechanics, a hypothesis-driven lockstep test runs random
operation sequences against both representations simultaneously and
asserts observational equivalence at every step.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bounded import BoundedReceiverBook, BoundedSenderBook
from repro.core.window import ReceiverWindow, SenderWindow


class TestBoundedSenderBook:
    def test_initial_state(self):
        book = BoundedSenderBook(4)
        assert book.can_send
        assert book.all_acknowledged

    def test_take_next_wraps_mod_2w(self):
        book = BoundedSenderBook(2)  # domain 4
        seqs = []
        for _ in range(8):
            seqs.append(book.take_next())
            book.apply_ack(seqs[-1], seqs[-1])
        assert seqs == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_window_closes(self):
        book = BoundedSenderBook(2)
        book.take_next()
        book.take_next()
        assert not book.can_send
        with pytest.raises(RuntimeError):
            book.take_next()

    def test_ack_advances_and_clears_cells(self):
        book = BoundedSenderBook(2)
        book.take_next()
        book.take_next()
        advanced = book.apply_ack(0, 1)
        assert advanced == 2
        assert book.na == 2
        assert book.all_acknowledged
        assert not book.is_acked_cell(0)  # cells cleared on slide

    def test_out_of_order_ack_recorded_but_no_advance(self):
        book = BoundedSenderBook(4)
        for _ in range(4):
            book.take_next()
        assert book.apply_ack(2, 3) == 0
        assert book.apply_ack(0, 1) == 4

    def test_outstanding_wire(self):
        book = BoundedSenderBook(4)
        for _ in range(4):
            book.take_next()
        book.apply_ack(1, 2)
        assert book.outstanding_wire() == [0, 3]

    def test_wrapped_ack_pair(self):
        # windows that straddle the mod-2w boundary produce wrapped pairs
        book = BoundedSenderBook(2)  # domain 4
        for _ in range(3):
            wire = book.take_next()
            book.apply_ack(wire, wire)
        book.take_next()  # wire 3
        book.take_next()  # wire 0 (wrapped)
        advanced = book.apply_ack(3, 0)  # wrapped block (3, 0)
        assert advanced == 2
        assert book.all_acknowledged

    def test_full_domain_wrap_reads_as_empty(self):
        # a pair whose wrap would cover the whole domain cannot come from a
        # conforming peer (blocks cover at most w < n numbers); the loop
        # reads it as an empty range and acknowledges nothing
        book = BoundedSenderBook(2)
        book.take_next()
        assert book.apply_ack(1, 0) == 0  # (1,0) in domain 4: empty
        assert not book.all_acknowledged

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            BoundedSenderBook(0)


class TestBoundedReceiverBook:
    def test_in_order_accept_and_block(self):
        book = BoundedReceiverBook(4)
        assert book.accept(0, "p0") is False
        book.advance()
        lo, hi, payloads = book.take_block()
        assert (lo, hi) == (0, 0)
        assert payloads == ["p0"]

    def test_duplicate_detection_mod_domain(self):
        book = BoundedReceiverBook(4)  # domain 8
        book.accept(0)
        book.advance()
        book.take_block()
        assert book.accept(0) is True  # true 0 again: duplicate
        assert book.is_duplicate(0)

    def test_out_of_order_buffer_and_release(self):
        book = BoundedReceiverBook(4)
        book.accept(2, "p2")
        book.accept(1, "p1")
        book.advance()
        assert not book.ack_ready
        book.accept(0, "p0")
        book.advance()
        lo, hi, payloads = book.take_block()
        assert (lo, hi) == (0, 2)
        assert payloads == ["p0", "p1", "p2"]

    def test_wrapped_block(self):
        book = BoundedReceiverBook(2)  # domain 4
        for wire in (0, 1, 2):
            book.accept(wire, f"p{wire}")
            book.advance()
            book.take_block()
        book.accept(3, "p3")
        book.accept(0, "p4")  # wrapped second generation
        book.advance()
        lo, hi, payloads = book.take_block()
        assert (lo, hi) == (3, 0)
        assert payloads == ["p3", "p4"]

    def test_buffered_count(self):
        book = BoundedReceiverBook(4)
        book.accept(1)
        book.accept(3)
        assert book.buffered_count() == 2

    def test_take_block_empty_raises(self):
        with pytest.raises(RuntimeError):
            BoundedReceiverBook(4).take_block()

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            BoundedReceiverBook(0)


# ----------------------------------------------------------------------
# lockstep equivalence: bounded books vs unbounded reference
# ----------------------------------------------------------------------

W = 4


def _sender_step(op, window: SenderWindow, book: BoundedSenderBook):
    """Apply one operation to both representations; compare observables."""
    if op == "send":
        if window.can_send:
            true_seq = window.take_next()
            wire = book.take_next()
            assert wire == true_seq % (2 * W)
        else:
            assert not book.can_send
    assert window.can_send == book.can_send
    assert window.in_flight_window == book.in_flight_window
    assert window.all_acknowledged == book.all_acknowledged


@settings(max_examples=60, deadline=None)
@given(st.lists(st.sampled_from(["send", "ack_lo", "ack_mid"]), max_size=60))
def test_sender_lockstep_equivalence(ops):
    """Random send/ack schedules: bounded sender mirrors the reference."""
    window = SenderWindow(W)
    book = BoundedSenderBook(W)
    for op in ops:
        if op == "send":
            _sender_step(op, window, book)
        else:
            outstanding = window.outstanding()
            if not outstanding:
                continue
            # ack either the oldest outstanding or a mid-window block
            if op == "ack_lo":
                lo = hi = outstanding[0]
            else:
                lo = hi = outstanding[len(outstanding) // 2]
            before_na = window.na
            window.apply_ack(lo, hi)
            advanced = book.apply_ack(lo % (2 * W), hi % (2 * W))
            assert advanced == window.na - before_na
        assert book.na == window.na % (2 * W)
        assert book.ns == window.ns % (2 * W)
        assert sorted(book.outstanding_wire()) == sorted(
            s % (2 * W) for s in window.outstanding()
        )


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_receiver_lockstep_equivalence(data):
    """Random arrival schedules: bounded receiver mirrors the reference."""
    window = ReceiverWindow(W)
    book = BoundedReceiverBook(W)
    next_new = 0
    arrivals = data.draw(
        st.lists(st.sampled_from(["new", "skip", "old", "flush"]), max_size=60)
    )
    pending_new = []
    for op in arrivals:
        if op == "new" or op == "skip":
            # deliver either the next expected or one ahead (reorder)
            if op == "skip" and window.vr + 1 < window.nr + W:
                seq = None
                for candidate in range(window.vr, window.nr + W):
                    if candidate >= next_new:
                        pending_new.append(candidate)
                if pending_new:
                    seq = pending_new.pop()
                    next_new = max(next_new, seq + 1)
            else:
                seq = next_new
                next_new += 1
            if seq is None or seq >= window.nr + W:
                continue
            ref = window.accept(seq, f"p{seq}")
            dup = book.accept(seq % (2 * W), f"p{seq}")
            assert dup == ref.duplicate
            window.advance()
            book.advance()
        elif op == "old" and window.nr > 0:
            seq = window.nr - 1
            ref = window.accept(seq, None)
            dup = book.accept(seq % (2 * W), None)
            assert ref.duplicate and dup
        elif op == "flush":
            assert window.ack_ready == book.ack_ready
            if window.ack_ready:
                ref_lo, ref_hi, ref_payloads = window.take_block()
                lo, hi, payloads = book.take_block()
                assert lo == ref_lo % (2 * W)
                assert hi == ref_hi % (2 * W)
                assert payloads == ref_payloads
        assert book.nr == window.nr % (2 * W)
        assert book.vr == window.vr % (2 * W)
