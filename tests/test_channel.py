"""Unit tests for the simulated channel."""

import random

import pytest

from repro.channel.channel import Channel
from repro.channel.delay import ConstantDelay, ExponentialDelay, UniformDelay
from repro.channel.impairments import BernoulliLoss, ScriptedLoss


def make_channel(sim, **kwargs):
    channel = Channel(sim, rng=random.Random(1), **kwargs)
    received = []
    channel.connect(received.append)
    return channel, received


class TestDelivery:
    def test_delivers_after_delay(self, sim):
        channel, received = make_channel(sim, delay=ConstantDelay(2.0))
        channel.send("hello")
        sim.run(until=1.9)
        assert received == []
        sim.run()
        assert received == ["hello"]
        assert sim.now == 2.0

    def test_fifo_with_constant_delay(self, sim):
        channel, received = make_channel(sim, delay=ConstantDelay(1.0))
        for index in range(5):
            sim.schedule(index * 0.1, channel.send, index)
        sim.run()
        assert received == [0, 1, 2, 3, 4]

    def test_send_without_receiver_raises(self, sim):
        channel = Channel(sim)
        with pytest.raises(RuntimeError):
            channel.send("orphan")

    def test_jitter_produces_reordering(self, sim):
        channel, received = make_channel(sim, delay=UniformDelay(0.0, 2.0))
        for index in range(200):
            sim.schedule(index * 0.01, channel.send, index)
        sim.run()
        assert sorted(received) == list(range(200))
        assert received != list(range(200))  # some reorder occurred
        assert channel.stats.reordered > 0

    def test_stats_counters(self, sim):
        channel, received = make_channel(sim)
        for index in range(3):
            channel.send(index)
        sim.run()
        assert channel.stats.sent == 3
        assert channel.stats.delivered == 3
        assert channel.stats.lost == 0


class TestLoss:
    def test_lost_messages_never_delivered(self, sim):
        channel, received = make_channel(sim, loss=BernoulliLoss(1.0))
        channel.send("doomed")
        sim.run()
        assert received == []
        assert channel.stats.lost == 1

    def test_scripted_loss_hits_exact_message(self, sim):
        channel, received = make_channel(sim, loss=ScriptedLoss({1}))
        for index in range(3):
            channel.send(index)
        sim.run()
        assert received == [0, 2]

    def test_partial_loss_statistics(self, sim):
        channel, received = make_channel(sim, loss=BernoulliLoss(0.5))
        for index in range(1000):
            channel.send(index)
        sim.run()
        assert channel.stats.delivered + channel.stats.lost == 1000
        assert 350 < channel.stats.lost < 650


class TestAging:
    def test_overlong_delay_ages_out(self, sim):
        channel, received = make_channel(
            sim, delay=ExponentialDelay(mean=10.0), max_lifetime=0.001
        )
        for index in range(50):
            channel.send(index)
        sim.run()
        assert received == []  # essentially everything aged out
        assert channel.stats.aged_out == 50

    def test_aging_bound_respected(self, sim):
        channel, received = make_channel(
            sim, delay=ExponentialDelay(mean=1.0), max_lifetime=2.0
        )
        send_time = {}
        deliveries = []
        channel.connect(lambda m: deliveries.append((m, sim.now)))
        for index in range(500):
            send_time[index] = 0.0
            channel.send(index)
        sim.run()
        for message, when in deliveries:
            assert when - send_time[message] <= 2.0

    def test_invalid_lifetime_rejected(self, sim):
        with pytest.raises(ValueError):
            Channel(sim, max_lifetime=0.0)

    def test_effective_max_lifetime_min_of_bounds(self, sim):
        channel = Channel(sim, delay=ConstantDelay(3.0), max_lifetime=5.0)
        assert channel.effective_max_lifetime == 3.0
        channel = Channel(sim, delay=ExponentialDelay(1.0), max_lifetime=5.0)
        assert channel.effective_max_lifetime == 5.0
        channel = Channel(sim, delay=ExponentialDelay(1.0))
        assert channel.effective_max_lifetime is None


class TestInFlightInspection:
    def test_in_flight_contents(self, sim):
        channel, received = make_channel(sim, delay=ConstantDelay(2.0))
        channel.send("a")
        channel.send("b")
        assert sorted(channel.in_flight()) == ["a", "b"]
        assert channel.in_flight_count == 2
        assert not channel.is_empty
        sim.run()
        assert channel.is_empty

    def test_count_matching(self, sim):
        channel, received = make_channel(sim, delay=ConstantDelay(2.0))
        for value in (1, 2, 2, 3):
            channel.send(value)
        assert channel.count_matching(lambda m: m == 2) == 2

    def test_lost_message_not_in_flight(self, sim):
        channel, received = make_channel(sim, loss=BernoulliLoss(1.0))
        channel.send("x")
        assert channel.is_empty

    def test_drop_in_flight(self, sim):
        channel, received = make_channel(sim, delay=ConstantDelay(2.0))
        channel.send("keep")
        channel.send("drop")
        assert channel.drop_in_flight(lambda m: m == "drop") == 1
        sim.run()
        assert received == ["keep"]
        assert channel.stats.lost == 1

    def test_in_flight_now_derived_stat(self, sim):
        channel, received = make_channel(sim, delay=ConstantDelay(2.0))
        channel.send("a")
        assert channel.stats.in_flight_now == 1
        sim.run()
        assert channel.stats.in_flight_now == 0


class TestObservers:
    def test_observer_sees_all_event_kinds(self, sim):
        channel, received = make_channel(sim, loss=ScriptedLoss({1}))
        events = []
        channel.add_observer(lambda kind, m: events.append((kind, m)))
        channel.send("a")
        channel.send("b")  # lost
        sim.run()
        kinds = [kind for kind, _ in events]
        assert kinds == ["send", "deliver", "send", "lose"] or kinds == [
            "send", "send", "lose", "deliver",
        ]

    def test_age_event_notified(self, sim):
        channel, received = make_channel(
            sim, delay=ExponentialDelay(mean=100.0), max_lifetime=0.0001
        )
        events = []
        channel.add_observer(lambda kind, m: events.append(kind))
        channel.send("x")
        assert "age" in events

    def test_mid_run_attach_seen_by_next_send(self, sim):
        """An observer attached between two sends must see the second —
        the obs layer attaches while a transfer is already running."""
        channel, received = make_channel(sim, delay=ConstantDelay(1.0))
        channel.send("before")
        events = []
        channel.add_observer(lambda kind, m: events.append((kind, m)))
        channel.send("after")
        sim.run()
        assert ("send", "after") in events
        assert ("deliver", "after") in events
        # the pre-attach send was never observed
        assert ("send", "before") not in events


class TestReset:
    """Channel.reset must return the channel — and its loss model — to
    the just-built state, so repeated runs on one channel replay
    deterministically (the regression: stateful loss models kept their
    script/state position across resets)."""

    def test_scripted_loss_replays_after_reset(self, sim):
        channel, received = make_channel(
            sim, delay=ConstantDelay(1.0), loss=ScriptedLoss({1})
        )
        for index in range(3):
            channel.send(index)
        sim.run()
        assert received == [0, 2]

        channel.reset()
        received.clear()
        for index in range(3):
            channel.send(index)
        sim.run()
        # without LossModel.reset() the script index would have kept
        # counting and dropped nothing on the second run
        assert received == [0, 2]
        assert channel.stats.lost == 1

    def test_gilbert_elliott_returns_to_good_state(self, sim):
        from repro.channel.impairments import GilbertElliottLoss

        loss = GilbertElliottLoss(p_good_to_bad=1.0, p_bad_to_good=0.0)
        channel, received = make_channel(sim, loss=loss)
        channel.send("x")  # transitions the model to BAD
        assert loss.state == GilbertElliottLoss.BAD
        channel.reset()
        assert loss.state == GilbertElliottLoss.GOOD

    def test_reset_cancels_in_flight_and_zeroes_stats(self, sim):
        channel, received = make_channel(sim, delay=ConstantDelay(2.0))
        channel.send("doomed")
        channel.reset()
        sim.run()
        assert received == []
        assert channel.stats.sent == 0
        assert channel.stats.in_flight_now == 0
        assert channel.is_empty
