"""Unit tests for delay models."""

import math
import random

import pytest

from repro.channel.delay import (
    ConstantDelay,
    ExponentialDelay,
    UniformDelay,
    reorder_probability,
)


class TestConstantDelay:
    def test_sample_is_constant(self, rng):
        model = ConstantDelay(2.5)
        assert all(model.sample(rng) == 2.5 for _ in range(10))

    def test_bounds(self):
        model = ConstantDelay(2.5)
        assert model.max_delay == 2.5
        assert model.mean_delay == 2.5

    def test_zero_delay_allowed(self, rng):
        assert ConstantDelay(0.0).sample(rng) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantDelay(-1.0)


class TestUniformDelay:
    def test_samples_within_range(self, rng):
        model = UniformDelay(1.0, 3.0)
        for _ in range(200):
            assert 1.0 <= model.sample(rng) <= 3.0

    def test_bounds(self):
        model = UniformDelay(1.0, 3.0)
        assert model.max_delay == 3.0
        assert model.mean_delay == 2.0

    def test_degenerate_range_is_constant(self, rng):
        model = UniformDelay(2.0, 2.0)
        assert model.sample(rng) == 2.0

    def test_sample_mean_near_expectation(self, rng):
        model = UniformDelay(0.0, 2.0)
        mean = sum(model.sample(rng) for _ in range(5000)) / 5000
        assert abs(mean - 1.0) < 0.05

    def test_inverted_range_rejected(self):
        with pytest.raises(ValueError):
            UniformDelay(3.0, 1.0)

    def test_negative_low_rejected(self):
        with pytest.raises(ValueError):
            UniformDelay(-1.0, 1.0)


class TestExponentialDelay:
    def test_samples_at_least_offset(self, rng):
        model = ExponentialDelay(mean=1.0, offset=0.5)
        for _ in range(200):
            assert model.sample(rng) >= 0.5

    def test_unbounded_max(self):
        assert ExponentialDelay(1.0).max_delay is None

    def test_mean_delay_includes_offset(self):
        assert ExponentialDelay(mean=1.0, offset=0.5).mean_delay == 1.5

    def test_sample_mean_near_expectation(self, rng):
        model = ExponentialDelay(mean=2.0)
        mean = sum(model.sample(rng) for _ in range(5000)) / 5000
        assert abs(mean - 2.0) < 0.15

    def test_nonpositive_mean_rejected(self):
        with pytest.raises(ValueError):
            ExponentialDelay(0.0)

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            ExponentialDelay(1.0, offset=-0.1)


class TestReorderProbability:
    def test_simultaneous_sends_half(self):
        assert math.isclose(reorder_probability(0.0, 2.0, 0.0), 0.5)

    def test_gap_at_width_is_zero(self):
        assert reorder_probability(0.0, 2.0, 2.0) == 0.0

    def test_gap_beyond_width_is_zero(self):
        assert reorder_probability(0.0, 2.0, 5.0) == 0.0

    def test_zero_width_fifo(self):
        assert reorder_probability(1.0, 1.0, 0.1) == 0.0

    def test_monotone_in_gap(self):
        probs = [reorder_probability(0.0, 2.0, g) for g in (0.0, 0.5, 1.0, 1.5)]
        assert probs == sorted(probs, reverse=True)

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError):
            reorder_probability(0.0, 2.0, -0.5)

    def test_matches_monte_carlo(self, rng):
        low, high, gap = 0.0, 2.0, 0.5
        expected = reorder_probability(low, high, gap)
        hits = 0
        trials = 20000
        for _ in range(trials):
            a = rng.uniform(low, high)
            b = rng.uniform(low, high)
            if gap + b < a:
                hits += 1
        assert abs(hits / trials - expected) < 0.02
