"""Unit tests for loss models."""

import random

import pytest

from repro.channel.impairments import (
    BernoulliLoss,
    GilbertElliottLoss,
    NoLoss,
    ScriptedLoss,
)


class TestNoLoss:
    def test_never_drops(self, rng):
        model = NoLoss()
        assert not any(model.drops(rng) for _ in range(100))


class TestBernoulliLoss:
    def test_zero_never_drops(self, rng):
        model = BernoulliLoss(0.0)
        assert not any(model.drops(rng) for _ in range(100))

    def test_one_always_drops(self, rng):
        model = BernoulliLoss(1.0)
        assert all(model.drops(rng) for _ in range(100))

    def test_rate_matches_probability(self, rng):
        model = BernoulliLoss(0.3)
        drops = sum(model.drops(rng) for _ in range(10000))
        assert abs(drops / 10000 - 0.3) < 0.02

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            BernoulliLoss(1.5)
        with pytest.raises(ValueError):
            BernoulliLoss(-0.1)


class TestGilbertElliottLoss:
    def test_starts_good(self):
        model = GilbertElliottLoss(0.1, 0.5)
        assert model.state == GilbertElliottLoss.GOOD

    def test_good_state_lossless_by_default(self, rng):
        model = GilbertElliottLoss(0.0, 1.0)  # never leaves GOOD
        assert not any(model.drops(rng) for _ in range(100))

    def test_bad_state_drops_by_default(self, rng):
        model = GilbertElliottLoss(1.0, 0.0)  # enters BAD immediately, stays
        model.drops(rng)
        assert model.state == GilbertElliottLoss.BAD
        assert all(model.drops(rng) for _ in range(20))

    def test_losses_are_bursty(self, rng):
        # with sticky states, loss runs should be much longer than
        # independent Bernoulli at the same average rate
        model = GilbertElliottLoss(0.02, 0.2, p_good=0.0, p_bad=1.0)
        outcomes = [model.drops(rng) for _ in range(20000)]
        runs = []
        current = 0
        for dropped in outcomes:
            if dropped:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        assert runs and max(runs) >= 5  # long bursts exist

    def test_reset_returns_to_good(self, rng):
        model = GilbertElliottLoss(1.0, 0.0)
        model.drops(rng)
        model.reset()
        assert model.state == GilbertElliottLoss.GOOD

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss(2.0, 0.5)


class TestScriptedLoss:
    def test_drops_exact_indices(self, rng):
        model = ScriptedLoss({0, 2})
        outcomes = [model.drops(rng) for _ in range(4)]
        assert outcomes == [True, False, True, False]

    def test_empty_script_never_drops(self, rng):
        model = ScriptedLoss(set())
        assert not any(model.drops(rng) for _ in range(10))

    def test_messages_seen_counter(self, rng):
        model = ScriptedLoss({1})
        for _ in range(5):
            model.drops(rng)
        assert model.messages_seen == 5

    def test_reset_restarts_indexing(self, rng):
        model = ScriptedLoss({0})
        assert model.drops(rng) is True
        assert model.drops(rng) is False
        model.reset()
        assert model.drops(rng) is True
