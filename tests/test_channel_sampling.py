"""Stream identity for :mod:`repro.channel.sampling`.

The fast engine's channel path swaps ``random.Random`` for
:class:`BlockRandom`; every test here pins the property that makes the
swap legal: the wrapper returns *bit-for-bit* the draws the wrapped rng
would have produced, on both the numpy and pure-python refill backends.
"""

import random
import subprocess
import sys

import pytest

from repro.channel.sampling import (
    DEFAULT_BLOCK_SIZE,
    BlockRandom,
    maybe_block,
    numpy_available,
)


def _reference_draws(seed, script):
    """Run ``script`` — a list of (method, args) — on a raw Random."""
    rng = random.Random(seed)
    return [getattr(rng, method)(*args) for method, args in script]


def _mixed_script(n=5000, seed=99):
    """A deterministic interleaving of the three channel draw methods."""
    chooser = random.Random(seed)
    script = []
    for _ in range(n):
        which = chooser.randrange(3)
        if which == 0:
            script.append(("random", ()))
        elif which == 1:
            script.append(("uniform", (chooser.random(), 2.0 + chooser.random())))
        else:
            script.append(("expovariate", (0.1 + chooser.random(),)))
    return script


@pytest.mark.parametrize("block_size", [1, 7, DEFAULT_BLOCK_SIZE])
def test_bit_identical_mixed_stream(block_size):
    """Interleaved random/uniform/expovariate, crossing refill
    boundaries at awkward block sizes, must match the raw rng exactly
    (``==``, not ``approx``: one flipped ulp desyncs decision traces)."""
    script = _mixed_script()
    expected = _reference_draws(4242, script)
    block = BlockRandom(random.Random(4242), block_size=block_size)
    actual = [getattr(block, method)(*args) for method, args in script]
    assert actual == expected


def test_getstate_setstate_round_trip():
    block = BlockRandom(random.Random(7), block_size=13)
    for _ in range(20):  # leave a partially consumed block
        block.random()
    state = block.getstate()
    tail_a = [block.random() for _ in range(100)]
    block.setstate(state)
    tail_b = [block.random() for _ in range(100)]
    assert tail_a == tail_b


def test_getstate_matches_raw_rng_position():
    """After N draws, getstate()'s rng component equals a raw rng
    advanced by the same number of underlying draws."""
    n = 50
    block = BlockRandom(random.Random(3), block_size=8)
    drawn = [block.random() for _ in range(n)]
    reference = random.Random(3)
    expected = [reference.random() for _ in range(n)]
    assert drawn == expected
    rng_state, buffered = block.getstate()
    # the saved position accounts for the buffered remainder: consuming
    # the buffer (stored reversed) then fresh draws from the saved state
    # continues the reference stream without a gap
    replay = random.Random()
    replay.setstate(rng_state)
    continuation = list(buffered)[::-1] + [replay.random() for _ in range(10)]
    assert continuation == [
        reference.random() for _ in range(len(buffered) + 10)
    ]


def test_block_size_validation():
    with pytest.raises(ValueError):
        BlockRandom(random.Random(1), block_size=0)


def test_maybe_block_gating():
    rng = random.Random(5)
    assert maybe_block(None, "fast") is None
    assert maybe_block(rng, "default") is rng
    wrapped = maybe_block(rng, "fast")
    assert isinstance(wrapped, BlockRandom)
    assert wrapped.rng is rng


def test_no_silent_fallthrough():
    """Draw methods the channel doesn't use must be absent, not proxied:
    an invisible stream advance would desync traces."""
    block = BlockRandom(random.Random(1))
    for missing in ("randrange", "randint", "gauss", "choice", "shuffle"):
        assert not hasattr(block, missing)


_BACKEND_SNIPPET = """
import json, random
from repro.channel.sampling import BlockRandom, numpy_available

block = BlockRandom(random.Random(1234), block_size=7)
draws = []
for i in range(500):
    draws.append(block.random())
    draws.append(block.uniform(-1.5, 3.5))
    draws.append(block.expovariate(0.75))
state = block.getstate()
draws.append(block.random())
block.setstate(state)
draws.append(block.random())
print(json.dumps({"numpy": numpy_available(), "draws": draws}))
"""


def _run_backend(no_numpy):
    env = {"PYTHONPATH": "src"}
    if no_numpy:
        env["REPRO_NO_NUMPY"] = "1"
    result = subprocess.run(
        [sys.executable, "-c", _BACKEND_SNIPPET],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    import json

    return json.loads(result.stdout)


@pytest.mark.skipif(not numpy_available(), reason="numpy not importable")
def test_numpy_and_python_backends_identical():
    """REPRO_NO_NUMPY=1 must flip the backend without changing a single
    bit of the stream (json round-trips doubles exactly)."""
    with_numpy = _run_backend(no_numpy=False)
    without_numpy = _run_backend(no_numpy=True)
    assert with_numpy["numpy"] is True
    assert without_numpy["numpy"] is False
    assert with_numpy["draws"] == without_numpy["draws"]


def test_repr_names_backend():
    block = BlockRandom(random.Random(1))
    expected = "numpy" if numpy_available() else "python"
    assert expected in repr(block)
