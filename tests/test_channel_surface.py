"""Wrapper parity: every channel-shaped object carries the full surface.

The harness (runner, monitors, probes, obs sessions, oracle senders)
talks to channels through one implicit surface.  These tests make that
surface explicit (:mod:`repro.channel.surface`) and check every wrapper
— :class:`~repro.wire.framed.FramedChannel` and
:class:`~repro.channel.mux.FlowPort` — against it, so a new wrapper
cannot silently drop a capability and fail only deep inside a harness
run.  Also pins the link-label scheme: no two channel objects in a run
ever share a trace/obs ``channel=`` label.
"""

import random

import pytest

from repro.channel.arbiter import ArbiterConfig
from repro.channel.channel import Channel
from repro.channel.mux import FlowMux
from repro.channel.surface import (
    CHANNEL_SURFACE_ATTRS,
    CHANNEL_SURFACE_METHODS,
    ChannelSurface,
    missing_surface,
)
from repro.core.messages import DataMessage
from repro.sim.runner import LinkSpec
from repro.wire.framed import FramedChannel


def _raw_channel(sim, **kwargs):
    return Channel(sim, rng=random.Random(1), **kwargs)


class TestSurfaceContract:
    def test_channel_is_reference_implementation(self, sim):
        channel = _raw_channel(sim)
        assert isinstance(channel, ChannelSurface)
        assert missing_surface(channel) == []

    def test_framed_channel_complete(self, sim):
        framed = FramedChannel(_raw_channel(sim), 0.0)
        assert isinstance(framed, ChannelSurface)
        assert missing_surface(framed) == []

    def test_flow_port_complete(self, sim):
        port = FlowMux(_raw_channel(sim)).port(0)
        assert isinstance(port, ChannelSurface)
        assert missing_surface(port) == []

    def test_queued_flow_port_complete(self, sim):
        """An arbitrated (queue-backed) port carries the same surface."""
        mux = FlowMux(
            _raw_channel(sim), arbiter=ArbiterConfig(rate=2.0, burst=1.0)
        )
        port = mux.port(0)
        assert isinstance(port, ChannelSurface)
        assert missing_surface(port) == []

    def test_incomplete_wrapper_is_caught(self, sim):
        class Bare:
            def connect(self, receiver):
                pass

            def send(self, message):
                pass

        missing = missing_surface(Bare())
        for name in ("add_observer", "in_flight", "count_matching"):
            assert name in missing
        for name in CHANNEL_SURFACE_ATTRS:
            assert name in missing

    def test_surface_names_cover_harness_usage(self):
        # the names the runner/monitor/obs layers actually touch
        assert set(CHANNEL_SURFACE_METHODS) >= {
            "connect", "send", "add_observer", "in_flight", "count_matching"
        }
        assert set(CHANNEL_SURFACE_ATTRS) >= {
            "stats", "in_flight_count", "effective_max_lifetime", "name"
        }


class TestFramedForwarding:
    """FramedChannel must forward, not shadow, the inner channel's view."""

    def test_stats_are_the_inner_stats(self, sim):
        inner = _raw_channel(sim)
        framed = FramedChannel(inner, 0.0)
        assert framed.stats is inner.stats

    def test_in_flight_count_and_lifetime_forward(self, sim):
        inner = _raw_channel(sim, max_lifetime=7.5)
        framed = FramedChannel(inner, 0.0)
        framed.connect(lambda message: None)
        framed.send(DataMessage(seq=0, payload=b"x"))
        assert framed.in_flight_count == inner.in_flight_count == 1
        assert framed.effective_max_lifetime == inner.effective_max_lifetime

    def test_observer_sees_decoded_messages(self, sim):
        framed = FramedChannel(_raw_channel(sim), 0.0)
        framed.connect(lambda message: None)
        seen = []
        framed.add_observer(lambda kind, message: seen.append((kind, message)))
        framed.send(DataMessage(seq=3, payload=b"hi"))
        sim.run()
        kinds = [kind for kind, _ in seen]
        assert kinds == ["send", "deliver"]
        assert all(
            isinstance(message, DataMessage) and message.seq == 3
            for _, message in seen
        )


class TestLinkNaming:
    """Regression: unique, stable labels for every channel object."""

    def test_plain_link_uses_the_label(self, sim):
        channel = LinkSpec().build(sim, random.Random(1), "SR")
        assert channel.name == "SR"

    def test_framed_link_wrapper_owns_label_raw_gets_suffix(self, sim):
        framed = LinkSpec(bit_error_rate=1e-6).build(sim, random.Random(1), "SR")
        assert isinstance(framed, FramedChannel)
        assert framed.name == "SR"
        assert framed.inner.name == "SR.raw"

    def test_flow_ports_extend_the_link_label(self, sim):
        mux = FlowMux(LinkSpec().build(sim, random.Random(1), "SR"))
        assert [mux.port(i).name for i in range(3)] == [
            "SR.f0", "SR.f1", "SR.f2"
        ]

    def test_no_two_objects_share_a_label(self, sim):
        """The full stack of one run: two framed links, two flows each."""
        labels = []
        for link_name in ("SR", "RS"):
            framed = LinkSpec(bit_error_rate=1e-6).build(
                sim, random.Random(1), link_name
            )
            labels.extend([framed.name, framed.inner.name])
            mux = FlowMux(framed)
            labels.extend(mux.port(i).name for i in range(2))
        assert len(labels) == len(set(labels)), labels

    def test_framed_name_falls_back_to_inner(self, sim):
        framed = FramedChannel(_raw_channel(sim, name="X"), 0.0)
        assert framed.name == "X"


class TestFlowPortSurfaceBehaviour:
    def test_port_stats_and_inflight_are_per_flow(self, sim):
        mux = FlowMux(_raw_channel(sim))
        a, b = mux.port(0), mux.port(1)
        a.connect(lambda message: None)
        b.connect(lambda message: None)
        a.send(DataMessage(seq=0, payload="a"))
        a.send(DataMessage(seq=1, payload="a"))
        b.send(DataMessage(seq=0, payload="b"))
        assert a.in_flight_count == 2
        assert b.in_flight_count == 1
        assert mux.link.in_flight_count == 3
        assert a.count_matching(lambda m: m.seq == 0) == 1
        sim.run()
        assert a.stats.sent == a.stats.delivered == 2
        assert b.stats.sent == b.stats.delivered == 1
        assert a.is_empty and b.is_empty

    def test_port_lifetime_forwards(self, sim):
        link = _raw_channel(sim, max_lifetime=4.0)
        mux = FlowMux(link)
        assert mux.port(0).effective_max_lifetime == link.effective_max_lifetime

    def test_flow_id_outside_wire_domain_rejected(self, sim):
        mux = FlowMux(_raw_channel(sim))
        with pytest.raises(ValueError):
            mux.port(-1)
        with pytest.raises(ValueError):
            mux.port(0x10000)


class TestQueuedFlowPortParity:
    """An arbitrated port must behave like a (slower) plain port.

    The arbiter inserts a queue between ``FlowPort.send`` and the link,
    so the surface-level views — per-flow in-flight iteration, counts,
    stats after drain — must fold the queued frames in rather than
    silently losing them (the monitor and oracle layers iterate
    ``in_flight()`` to reason about outstanding messages).
    """

    def _queued_mux(self, sim, rate=1.0):
        return FlowMux(
            _raw_channel(sim), arbiter=ArbiterConfig(rate=rate, burst=1.0)
        )

    def test_queued_frames_count_as_in_flight(self, sim):
        mux = self._queued_mux(sim)
        port = mux.port(0)
        port.connect(lambda message: None)
        for seq in range(3):
            port.send(DataMessage(seq=seq, payload="x"))
        # burst=1: one frame reached the wire, two wait in the queue
        assert mux.link.in_flight_count == 1
        assert port.queue_depth == 2
        assert port.in_flight_count == 3
        assert sorted(m.seq for m in port.in_flight()) == [0, 1, 2]
        assert port.count_matching(lambda m: m.seq == 2) == 1

    def test_drain_delivers_everything_and_stats_match_plain(self, sim):
        plain = FlowMux(_raw_channel(sim)).port(0)
        queued = self._queued_mux(sim).port(1)
        for port in (plain, queued):
            port.connect(lambda message: None)
            for seq in range(4):
                port.send(DataMessage(seq=seq, payload="x"))
        sim.run()
        assert plain.stats.sent == plain.stats.delivered == 4
        assert queued.stats.sent == queued.stats.delivered == 4
        assert queued.queue_depth == 0 and queued.is_empty
        stats = queued.queue_stats
        assert stats is not None and stats["granted"] == 4

    def test_plain_port_reports_no_queue(self, sim):
        port = FlowMux(_raw_channel(sim)).port(0)
        assert port.queue_depth == 0
        assert port.queue_stats is None
