"""Tests for the command-line interface."""

import pytest

from repro.cli.main import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_args(self):
        args = build_parser().parse_args(["run", "e3", "--quick"])
        assert args.experiment == "e3" and args.quick

    def test_transfer_defaults(self):
        args = build_parser().parse_args(["transfer"])
        assert args.protocol == "blockack"
        assert args.window == 8
        assert args.flows == 1

    def test_run_flows_flag(self):
        args = build_parser().parse_args(["run", "e15", "--flows", "3"])
        assert args.flows == 3


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "blockack" in out

    def test_transfer_success_exit_code(self, capsys):
        code = main([
            "transfer", "--messages", "50", "--loss", "0.05",
            "--jitter", "1.0", "--seed", "3",
        ])
        assert code == 0
        assert "completed" in capsys.readouterr().out

    def test_transfer_multi_flow(self, capsys):
        code = main([
            "transfer", "--flows", "3", "--messages", "25",
            "--loss", "0.05", "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fairness" in out
        assert "flow 2:" in out  # one line per flow

    def test_transfer_with_trace(self, capsys):
        code = main(["transfer", "--messages", "10", "--trace", "5"])
        assert code == 0
        assert "send_data" in capsys.readouterr().out

    def test_transfer_all_protocols(self):
        from repro.protocols.registry import protocol_names

        for name in protocol_names():
            assert main(["transfer", "--protocol", name, "--messages", "20"]) == 0

    def test_check_clean_protocol(self, capsys):
        code = main(["check", "--window", "1", "--max-send", "2"])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_check_broken_protocol_fails_with_witness(self, capsys):
        code = main([
            "check", "--window", "2", "--max-send", "3",
            "--timeout-mode", "impatient",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "witness" in out

    def test_run_quick_experiment(self, capsys):
        assert main(["run", "e1", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "REPRODUCED" in out

    def test_compare_table_and_plot(self, capsys):
        code = main([
            "compare", "--messages", "60", "--losses", "0,0.05",
            "--protocols", "blockack,selective-repeat",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "goodput" in out
        assert "│" in out  # the plot frame
        assert "o blockack" in out

    def test_compare_detects_failures_via_exit_code(self, capsys):
        # an impossible deadline cannot be provoked through compare's
        # knobs, so just assert clean configs exit zero
        assert main([
            "compare", "--messages", "30", "--losses", "0",
            "--protocols", "gobackn",
        ]) == 0
