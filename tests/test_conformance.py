"""Run the public conformance kit against every shipped protocol."""

import pytest

from repro.protocols.registry import make_pair, protocol_names
from repro.testing import ConformanceError, check_conformance

WINDOW = 6

#: protocols whose throughput legitimately misses the pipelining bound
#: under some conformance condition (go-back-N collapses under the
#: reorder scenario's jitter, and under loss its goodput is window-bound
#: in a different way) — they still must pass every correctness gate.
NO_PIPELINING_GATE = {"gobackn"}


@pytest.mark.parametrize("name", protocol_names())
def test_shipped_protocol_conforms(name):
    check_conformance(
        lambda: make_pair(name, window=WINDOW),
        window=WINDOW,
        total=120,
        seeds=(1, 2),
        check_pipelining=name not in NO_PIPELINING_GATE,
    )


def test_tcp_sack_conforms():
    check_conformance(
        lambda: make_pair("tcp-sack", window=WINDOW),
        window=WINDOW,
        total=120,
    )


class TestKitCatchesBrokenImplementations:
    def test_never_retransmitting_sender_fails_loss_recovery(self):
        from repro.protocols.blockack import BlockAckReceiver, BlockAckSender

        def broken_factory():
            sender = BlockAckSender(WINDOW, timeout_period=10_000.0)
            return sender, BlockAckReceiver(WINDOW)

        with pytest.raises(ConformanceError) as excinfo:
            check_conformance(broken_factory, window=WINDOW, total=60)
        assert excinfo.value.scenario in ("loss-recovery", "adversity-soak")

    def test_stop_and_wait_fails_pipelining(self):
        from repro.protocols.blockack import BlockAckReceiver, BlockAckSender

        def slow_factory():
            # window 1 disguised as window 6: violates the pipelining gate
            return BlockAckSender(1), BlockAckReceiver(1)

        with pytest.raises(ConformanceError) as excinfo:
            check_conformance(slow_factory, window=WINDOW, total=60)
        assert excinfo.value.scenario == "pipelining"

    def test_error_message_names_scenario(self):
        error = ConformanceError("lossless", "oops")
        assert "[lossless]" in str(error)
