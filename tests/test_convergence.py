"""Tests for the corrupted-initial-state convergence checker.

The checker (``repro.verify.convergence``) is the exhaustive twin of the
runtime self-stabilization harness: same witness-authoritative repair
rules, applied to the abstract protocol of ``repro.verify.actions`` and
verified by explicit-state search instead of simulation.
"""

import pytest

from repro.verify.convergence import (
    check_convergence,
    corrupt_scenarios,
    main,
    receiver_witness,
    repair_state,
    sender_witness,
)
from repro.verify.state import SystemState


def mid_flight_state():
    """na=2, ns=6, ackd={3}; receiver accepted 0..1, buffered 4."""
    return SystemState(
        na=2,
        ns=6,
        nr=2,
        vr=3,
        ackd=frozenset({3}),
        rcvd=frozenset({4}),
        c_sr=(),
        c_rs=(),
    )


class TestWitnesses:
    def test_sender_witness_is_the_unacked_set(self):
        assert sender_witness(mid_flight_state()) == {2, 4, 5}

    def test_receiver_witness_is_run_plus_buffer(self):
        assert receiver_witness(mid_flight_state()) == {2, 4}

    def test_witnesses_empty_at_rest(self):
        done = SystemState(
            na=3, ns=3, nr=3, vr=3,
            ackd=frozenset(), rcvd=frozenset(), c_sr=(), c_rs=(),
        )
        assert sender_witness(done) == frozenset()
        assert receiver_witness(done) == frozenset()


class TestRepairState:
    def _witnesses(self):
        state = mid_flight_state()
        return state, sender_witness(state), receiver_witness(state)

    def test_consistent_state_untouched(self):
        state, unacked, buffered = self._witnesses()
        repaired, repairs = repair_state(state, 4, unacked, buffered)
        assert repairs == []
        assert repaired == state

    def test_demote_forged_progress(self):
        state, unacked, buffered = self._witnesses()
        corrupted = state.replace(na=5)
        repaired, repairs = repair_state(corrupted, 4, unacked, buffered)
        assert repairs
        assert repaired.na == 2
        assert repaired.ackd == {3}

    def test_promote_rewound_cursor(self):
        state, unacked, buffered = self._witnesses()
        corrupted = state.replace(na=0, ackd=frozenset())
        repaired, repairs = repair_state(corrupted, 4, unacked, buffered)
        assert any("released at acknowledgment" in r for r in repairs)
        assert repaired.na == 2
        assert repaired.ackd == {3}

    def test_receiver_vr_clamped_to_buffer_run(self):
        state, unacked, buffered = self._witnesses()
        corrupted = state.replace(vr=6, rcvd=frozenset())
        repaired, repairs = repair_state(corrupted, 4, unacked, buffered)
        assert repairs
        assert repaired.vr == 3  # 3 was never buffered: the run stops
        assert repaired.rcvd == {4}  # the stranded receipt is rebuilt

    def test_receiver_cursor_inversion(self):
        state, unacked, buffered = self._witnesses()
        corrupted = state.replace(vr=0)
        repaired, _ = repair_state(corrupted, 4, unacked, buffered)
        # demoted to the durable anchor; the buffered run is re-recorded
        # and action 4 re-advances vr during recovery
        assert repaired.vr == repaired.nr == 2
        assert repaired.rcvd == {2, 4}

    def test_repair_is_idempotent(self):
        state, unacked, buffered = self._witnesses()
        for corrupted in (
            state.replace(na=0, ackd=frozenset()),
            state.replace(na=5),
            state.replace(vr=6),
        ):
            once, _ = repair_state(corrupted, 4, unacked, buffered)
            twice, repairs = repair_state(once, 4, unacked, buffered)
            assert repairs == []
            assert twice == once


class TestCorruptScenarios:
    def test_covers_the_runtime_sites(self):
        scenarios = list(corrupt_scenarios(mid_flight_state(), 4, 6))
        sites = {s.site for s in scenarios}
        assert sites == {"sender.window", "sender.acks", "receiver.window"}
        assert len(scenarios) >= 8

    def test_every_scenario_repairs_to_a_stable_state(self):
        state = mid_flight_state()
        unacked = sender_witness(state)
        buffered = receiver_witness(state)
        for scenario in corrupt_scenarios(state, 4, 6):
            again, repairs = repair_state(
                scenario.repaired, 4, unacked, buffered
            )
            assert repairs == [], scenario.detail
            assert again == scenario.repaired


class TestCheckConvergence:
    def test_tiny_system_has_no_divergence(self):
        report = check_convergence(2, 2, timeout_mode="simple")
        assert report.ok
        assert report.origins > 0
        assert report.scenarios > report.origins
        assert report.diverged == []
        assert "OK [simple]" in report.summary()

    @pytest.mark.slow
    @pytest.mark.parametrize("mode", ["simple", "per_message"])
    def test_ci_configuration_converges(self, mode):
        report = check_convergence(2, 3, timeout_mode=mode)
        assert report.ok, report.summary()
        assert report.diverged == []

    def test_cli_entry_point(self, capsys):
        assert main(["--window", "2", "--max-send", "2",
                     "--timeout-mode", "simple"]) == 0
        out = capsys.readouterr().out
        assert "OK [simple]" in out
