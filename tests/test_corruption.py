"""Tests for adversarial state corruption and self-stabilizing repair.

Three layers, mirroring the implementation:

* the corruption model itself (``repro.robustness.corruption``) — site
  and severity validation, the mutators' contracts (ledger exclusions:
  ``ns``/``nr`` never rewound, payload-store entries never deleted);
* the repair rules on the window/book/controller state classes — the
  payload-store witness is authoritative in both directions (demote a
  lying "acknowledged", promote a released-at-ack number);
* end to end through ``run_transfer`` with a ``FaultPlan`` carrying
  ``StateCorruption`` events: every protocol must reconverge, the
  ``StabilizationMonitor`` verdict rides ``result.stabilization``.
"""

import random

import pytest

from repro.core.bounded import BoundedReceiverBook, BoundedSenderBook
from repro.core.window import ReceiverWindow, SenderWindow
from repro.experiments.common import lossy_link
from repro.protocols.registry import make_pair
from repro.robustness.controller import AdaptiveConfig
from repro.robustness.corruption import (
    SEVERITIES,
    SITES,
    StateCorruption,
    apply_corruption,
)
from repro.robustness.faults import FaultPlan
from repro.sim.runner import run_transfer
from repro.workloads.sources import GreedySource


class TestStateCorruptionSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            StateCorruption(at=-1.0)
        with pytest.raises(ValueError):
            StateCorruption(at=1.0, site="sender.soul")
        with pytest.raises(ValueError):
            StateCorruption(at=1.0, severity="apocalyptic")

    def test_endpoint_split(self):
        assert StateCorruption(at=1.0, site="sender.rtt").endpoint == "sender"
        assert (
            StateCorruption(at=1.0, site="receiver.window").endpoint
            == "receiver"
        )

    def test_str_is_compact(self):
        spec = StateCorruption(at=40.0, site="sender.acks", severity="worst")
        assert str(spec) == "sender.acks/worst@40"


# ----------------------------------------------------------------------
# mutator contracts (the ledger exclusions)
# ----------------------------------------------------------------------


class _FakeSender:
    """Duck-typed endpoint: a window plus the payload store."""

    def __init__(self, window):
        self.window = window
        self._payloads = {}


def _mid_flight_sender():
    """A sender six messages in: na=2, ns=6, ackd={3}, holding 2,4,5."""
    s = _FakeSender(SenderWindow(4))
    for seq in range(4):
        s.window.take_next()
        s._payloads[seq] = 100 + seq
    s.window.apply_ack(0, 1)
    del s._payloads[0], s._payloads[1]
    for _ in range(2):
        s._payloads[s.window.take_next()] = 999
    s.window.apply_ack(3, 3)
    del s._payloads[3]
    return s


class TestMutatorContracts:
    @pytest.mark.parametrize("severity", SEVERITIES)
    def test_ns_is_never_rewound(self, severity):
        for seed in range(10):
            s = _mid_flight_sender()
            spec = StateCorruption(at=1.0, site="sender.window", severity=severity)
            apply_corruption(s, spec, random.Random(seed))
            assert s.window.ns == 6  # the allocation ledger is inviolable

    @pytest.mark.parametrize("severity", SEVERITIES)
    def test_payload_entries_survive_corruption(self, severity):
        for seed in range(10):
            s = _mid_flight_sender()
            spec = StateCorruption(
                at=1.0, site="sender.payloads", severity=severity
            )
            mutations = apply_corruption(s, spec, random.Random(seed))
            assert mutations
            # values may be garbage, but the entry set — the repair
            # rules' witness — is untouched
            assert sorted(s._payloads) == [2, 4, 5]

    @pytest.mark.parametrize("severity", SEVERITIES)
    def test_bounded_payload_cells_never_emptied(self, severity):
        sender, _ = make_pair("blockack-bounded", window=4)
        for seq in range(3):
            sender.book.take_next()
            sender._payloads[seq % 4] = 100 + seq
        held_before = [c for c, p in enumerate(sender._payloads) if p is not None]
        spec = StateCorruption(at=1.0, site="sender.payloads", severity=severity)
        apply_corruption(sender, spec, random.Random(3))
        held_after = [c for c, p in enumerate(sender._payloads) if p is not None]
        # an empty cell IS the released-at-ack ledger entry: corruption
        # may scribble on values but never empties an occupied cell
        assert held_after == held_before

    def test_every_site_mutates_and_describes(self):
        for site in SITES:
            sender, receiver = make_pair(
                "blockack", window=4, adaptive=AdaptiveConfig(initial_rto=5.0)
            )
            for seq in range(3):
                sender.window.take_next()
                sender._payloads[seq] = seq
            target = sender if site.startswith("sender") else receiver
            spec = StateCorruption(at=1.0, site=site, severity="worst")
            mutations = apply_corruption(target, spec, random.Random(1))
            assert mutations and all(isinstance(m, str) for m in mutations)

    def test_rtt_site_is_noop_without_controller(self):
        sender, _ = make_pair("blockack", window=4)
        spec = StateCorruption(at=1.0, site="sender.rtt", severity="worst")
        mutations = apply_corruption(sender, spec, random.Random(1))
        assert mutations == ["no adaptive controller; rtt corruption is a no-op"]


# ----------------------------------------------------------------------
# repair rules: the payload witness is authoritative in both directions
# ----------------------------------------------------------------------


class TestSenderWindowRepair:
    def test_consistent_state_repairs_nothing(self):
        s = _mid_flight_sender()
        assert s.window.repair(witness=s._payloads.keys()) == []

    def test_demote_rewrites_forward_corruption(self):
        s = _mid_flight_sender()
        s.window.na = 5  # forged progress past held payloads
        s.window._ackd = {2, 4}
        repairs = s.window.repair(witness=s._payloads.keys())
        assert repairs
        assert s.window.na == 2 and s.window.ns == 6
        assert s.window._ackd == {3}
        s.window.check_invariant()

    def test_promote_rescues_a_rewound_cursor(self):
        # without promotion, numbers 0/1/3 would look unacknowledged
        # forever: their payloads are gone, nothing can retransmit them
        s = _mid_flight_sender()
        s.window.na = 0
        s.window._ackd = set()
        repairs = s.window.repair(witness=s._payloads.keys())
        assert any("released at acknowledgment" in r for r in repairs)
        assert s.window.na == 2
        assert s.window._ackd == {3}
        s.window.check_invariant()

    def test_empty_witness_promotes_to_done(self):
        s = _mid_flight_sender()
        s._payloads.clear()  # everything was acknowledged
        s.window.na = 1
        repairs = s.window.repair(witness=s._payloads.keys())
        assert repairs and s.window.all_acknowledged

    def test_held_payload_restores_send_horizon(self):
        s = _mid_flight_sender()
        s.window.ns = 3  # corrupt below the held maximum (5)
        s.window.repair(witness=s._payloads.keys())
        assert s.window.ns == 6
        s.window.check_invariant()

    def test_witness_none_repairs_only_local_inconsistencies(self):
        s = _mid_flight_sender()
        s.window.na = 9  # inverted past ns
        s.window._ackd = {1, 7}
        repairs = s.window.repair()
        assert len(repairs) == 2
        assert s.window.na == s.window.ns == 6
        # a plausible-but-wrong rewind is NOT repaired without a witness
        t = _mid_flight_sender()
        t.window.na = 0
        t.window._ackd = set()
        assert t.window.repair() == []


class TestReceiverWindowRepair:
    def _mid_flight(self):
        r = ReceiverWindow(4)
        r.accept(0, "a")
        r.accept(1, "b")
        r.advance()  # vr=2, payloads 0/1 awaiting take_block
        r.accept(3, "d")  # buffered out of order
        return r

    def test_consistent_state_repairs_nothing(self):
        assert self._mid_flight().repair() == []

    def test_forged_vr_clamped_to_payload_run(self):
        r = self._mid_flight()
        r.vr = 5  # claims 2/3/4 accepted; only 3 holds a payload
        repairs = r.repair()
        assert repairs
        assert r.vr == 2
        assert r.received_unaccepted == [3]  # re-buffered, not redone

    def test_cursor_inversion(self):
        r = self._mid_flight()
        r.vr = r.nr - 1 if r.nr else 0
        r.nr = 2
        repairs = r.repair()
        assert r.nr <= r.vr
        assert repairs

    def test_unbacked_receipts_demoted(self):
        r = self._mid_flight()
        r._rcvd.add(5)  # claims receipt of a number with no payload
        repairs = r.repair()
        assert any("no payload held" in x for x in repairs)
        assert 5 not in r._rcvd

    def test_orphan_payloads_dropped(self):
        r = self._mid_flight()
        r._payloads[7] = "ghost"
        repairs = r.repair()
        assert any("orphan" in x for x in repairs)
        assert 7 not in r._payloads


class TestBoundedBookRepair:
    def _mid_flight_book(self):
        """na=2, ns=6 (mod 8), cells 2/4/5 occupied, 3 acked+released."""
        book = BoundedSenderBook(4)
        cells = {}
        for seq in range(4):
            book.take_next()
            cells[seq % 4] = 100 + seq
        book.apply_ack(0, 1)
        del cells[0], cells[1]
        for _ in range(2):
            cells[book.take_next() % 4] = 999
        book.apply_ack(3, 3)
        del cells[3]
        return book, set(cells)

    def test_consistent_state_repairs_nothing(self):
        book, witness = self._mid_flight_book()
        assert book.repair(witness_cells=witness) == []

    def test_promote_advances_over_released_cells(self):
        # a rewind within the legal span: only the payload witness can
        # tell that 0/1 were acknowledged (their cells are empty)
        book = BoundedSenderBook(4)
        cells = {}
        for seq in range(4):
            book.take_next()
            cells[seq % 4] = 100 + seq
        book.apply_ack(0, 1)
        del cells[0], cells[1]
        book.na = 0
        repairs = book.repair(witness_cells=set(cells))
        assert any("released at acknowledgment" in r for r in repairs)
        assert book.na == 2

    def test_span_overflow_rewind_recovers_via_pullback(self):
        book, witness = self._mid_flight_book()
        book.na = 0  # span 6 > w: the assertion-6 guard fires first
        repairs = book.repair(witness_cells=witness)
        assert repairs
        assert book.na == 2
        assert book.outstanding_wire() == [2, 4, 5]

    def test_demote_pulls_back_over_occupied_cells(self):
        book, witness = self._mid_flight_book()
        book.na = book.domain.add(book.ns, 1)  # worst: na "ahead" of ns
        repairs = book.repair(witness_cells=witness)
        assert repairs
        assert book.na == 2
        assert book.outstanding_wire() == [2, 4, 5]

    def test_lying_ackd_cells_cleared(self):
        book, witness = self._mid_flight_book()
        for cell in range(4):
            book._ackd[cell] = True  # includes na's own cell
        book.repair(witness_cells=witness)
        assert book.outstanding_wire() == [2, 4, 5]

    def test_out_of_domain_counters_folded(self):
        book, witness = self._mid_flight_book()
        book.na, book.ns = book.na + 8, book.ns + 16
        repairs = book.repair(witness_cells=witness)
        assert any("out of domain" in r for r in repairs)
        assert 0 <= book.na < 8 and 0 <= book.ns < 8

    def test_receiver_span_overflow_demotes_to_nr(self):
        book = BoundedReceiverBook(4)
        book.vr = book.domain.add(book.nr, book.w)  # never-received window
        repairs = book.repair()
        assert repairs
        assert book.vr == book.nr


class TestControllerRepair:
    def _controller(self):
        return AdaptiveConfig().build(fallback_rto=5.0)

    def test_healthy_controller_untouched(self):
        ctl = self._controller()
        ctl.estimator.sample(3.0)
        assert ctl.repair() == []

    def test_infinite_srtt_resets_estimator(self):
        ctl = self._controller()
        ctl.estimator.srtt = float("inf")
        ctl.estimator.rttvar = -1.0
        repairs = ctl.repair()
        assert any("estimator reset" in r for r in repairs)
        assert ctl.estimator.rto == ctl.estimator.initial_rto

    def test_runaway_attempt_counts_cleared(self):
        ctl = self._controller()
        ctl._attempts[None] = 10**9
        repairs = ctl.repair()
        assert repairs and None not in ctl._attempts

    def test_consecutive_run_clamped_before_spurious_death(self):
        ctl = self._controller()
        ctl.budget.consecutive = 10**9
        repairs = ctl.repair()
        assert repairs
        # one more timeout must NOT spuriously kill the link now
        verdict = ctl.on_timeout(key=None, now=1.0)
        assert verdict.value != "link_dead"
        assert not ctl.link_dead


# ----------------------------------------------------------------------
# end to end: corruption through run_transfer
# ----------------------------------------------------------------------


def run_corrupted(
    protocol, site, severity, total=120, seed=11, engine="default", **pair_kwargs
):
    sender, receiver = make_pair(protocol, window=6, **pair_kwargs)
    plan = FaultPlan(
        seed=seed,
        corruptions=[StateCorruption(at=30.0, site=site, severity=severity)],
    )
    result = run_transfer(
        sender,
        receiver,
        GreedySource(total),
        forward=lossy_link(0.02),
        reverse=lossy_link(0.02),
        seed=seed,
        max_time=50_000.0,
        monitor_invariants=True,
        fault_plan=plan,
        engine=engine,
    )
    return result, plan


class TestEndToEndRecovery:
    def test_stabilization_summary_shape(self):
        result, plan = run_corrupted("blockack", "sender.window", "worst")
        stab = result.stabilization
        assert stab["verdict"] == "converged"
        assert stab["corruptions"] == 1
        assert stab["final_state_violations"] == []
        assert stab["reconvergence_time"] is not None
        assert stab["reconvergence_time"] >= 0.0
        assert plan.stats.state_corruptions == 1
        assert result.fault_stats["repairs"] == plan.stats.repairs

    def test_fast_engine_recovers_identically(self):
        """Corruption injection, repair, and reconvergence timing are
        engine-invariant: the fast engine must produce the exact
        stabilization payload the heap engine does."""
        default_result, _ = run_corrupted("blockack", "sender.window", "worst")
        fast_result, fast_plan = run_corrupted(
            "blockack", "sender.window", "worst", engine="fast"
        )
        assert fast_result.stabilization == default_result.stabilization
        assert fast_result.delivered == default_result.delivered
        assert fast_result.duration == default_result.duration
        assert fast_result.fault_stats == default_result.fault_stats
        assert fast_plan.stats.state_corruptions == 1

    def test_no_corruption_means_no_stabilization_payload(self):
        sender, receiver = make_pair("blockack", window=6)
        result = run_transfer(
            sender,
            receiver,
            GreedySource(60),
            forward=lossy_link(0.02),
            reverse=lossy_link(0.02),
            seed=7,
            monitor_invariants=True,
        )
        assert result.stabilization is None

    def test_receiver_worst_corruption_reconverges(self):
        result, _ = run_corrupted("blockack", "receiver.window", "worst")
        assert result.stabilization["verdict"] == "converged"
        assert result.completed and result.in_order

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "protocol",
        ["stenning", "blockack", "blockack-bounded", "gobackn",
         "selective-repeat", "tcp-sack"],
    )
    @pytest.mark.parametrize("site", SITES)
    def test_worst_case_never_diverges(self, protocol, site):
        kwargs = (
            {"timeout_mode": "per_message_safe", "adaptive": AdaptiveConfig()}
            if protocol == "blockack"
            else {}
        )
        result, _ = run_corrupted(protocol, site, "worst", **kwargs)
        stab = result.stabilization
        assert stab["verdict"] != "diverged", stab
        assert result.completed
        if site != "sender.payloads":
            # everything except honest payload-value damage fully recovers
            assert stab["verdict"] == "converged", stab

    def test_fault_plan_composition(self):
        # satellite: brownout + frame corruption + crash/restart + state
        # corruption on one run — the probes must flag the corruption and
        # stay clean about everything else
        from repro.channel.impairments import FrameCorruption
        from repro.robustness.faults import CrashRestart

        plan = FaultPlan(
            forward_corruption=FrameCorruption(0.03),
            forward_brownout=[(15.0, 0.0), (20.0, 0.6), (25.0, 0.6), (30.0, 0.0)],
            crashes=[CrashRestart(at=35.0, outage=5.0, endpoint="receiver")],
            corruptions=[
                StateCorruption(at=55.0, site="sender.window", severity="worst")
            ],
            seed=5,
        )
        sender, receiver = make_pair(
            "blockack", window=6, timeout_mode="per_message_safe"
        )
        result = run_transfer(
            sender,
            receiver,
            GreedySource(200),
            forward=lossy_link(0.02),
            reverse=lossy_link(0.02),
            seed=11,
            max_time=50_000.0,
            monitor_invariants=True,
            fault_plan=plan,
        )
        assert result.completed and result.in_order
        assert result.stabilization["verdict"] == "converged"
        stats = result.fault_stats
        assert stats["corrupt_forward"] > 0
        assert stats["crashes"] == 1 and stats["restarts"] == 1
        assert stats["state_corruptions"] == 1
        assert stats["repairs"] >= 1
