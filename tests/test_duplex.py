"""Tests for full-duplex operation with piggybacked acknowledgments."""

import random

import pytest

from repro.channel.delay import ConstantDelay, UniformDelay
from repro.channel.impairments import BernoulliLoss
from repro.core.messages import BlockAck, DataMessage
from repro.core.numbering import ModularNumbering
from repro.duplex.endpoint import DuplexEndpoint, DuplexFrame, PiggybackMux
from repro.duplex.runner import run_duplex
from repro.sim.runner import LinkSpec
from repro.workloads.sources import GreedySource, PoissonSource


def make_endpoints(window=8, bounded=True, hold=1.0):
    numbering = ModularNumbering(window) if bounded else None
    return (
        DuplexEndpoint("A", window, numbering=numbering, standalone_delay=hold),
        DuplexEndpoint("B", window, numbering=numbering, standalone_delay=hold),
    )


class TestPiggybackMux:
    def _mux(self, sim, hold=0.5):
        sent = []

        class FakeChannel:
            def send(self, frame):
                sent.append(frame)

        return PiggybackMux(sim, FakeChannel(), standalone_delay=hold), sent

    def test_data_alone_goes_immediately(self, sim):
        mux, sent = self._mux(sim)
        mux.send(DataMessage(seq=0, payload="p"))
        assert len(sent) == 1
        assert sent[0].data is not None and sent[0].ack is None

    def test_ack_rides_on_next_data(self, sim):
        mux, sent = self._mux(sim)
        mux.send(BlockAck(0, 2))
        assert sent == []  # held
        mux.send(DataMessage(seq=5))
        assert len(sent) == 1
        assert sent[0].ack == BlockAck(0, 2)
        assert sent[0].data.seq == 5
        assert mux.stats.piggybacked_acks == 1

    def test_held_ack_flushes_after_delay(self, sim):
        mux, sent = self._mux(sim, hold=0.5)
        mux.send(BlockAck(0, 0))
        sim.run()
        assert len(sent) == 1
        assert sent[0].data is None and sent[0].ack == BlockAck(0, 0)
        assert mux.stats.standalone_acks == 1

    def test_adjacent_held_acks_not_flushed_twice(self, sim):
        mux, sent = self._mux(sim)
        mux.send(BlockAck(0, 1))
        mux.send(BlockAck(2, 4))  # adjacent: no merge fn -> old flushed
        sim.run()
        assert len(sent) == 2  # without a merge function both go standalone

    def test_urgent_ack_never_delayed(self, sim):
        mux, sent = self._mux(sim)
        mux.send(BlockAck(3, 3, urgent=True))
        assert len(sent) == 1  # immediate, no hold

    def test_urgent_flushes_held_first(self, sim):
        mux, sent = self._mux(sim)
        mux.send(BlockAck(0, 1))
        mux.send(BlockAck(5, 5, urgent=True))
        assert len(sent) == 2
        assert sent[0].ack == BlockAck(0, 1)
        assert sent[1].ack == BlockAck(5, 5)

    def test_wrong_type_rejected(self, sim):
        mux, _ = self._mux(sim)
        with pytest.raises(TypeError):
            mux.send("junk")

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            PiggybackMux(sim, None, standalone_delay=-1.0)


class TestMergeAdjacent:
    def test_unbounded_adjacency(self):
        endpoint = DuplexEndpoint("X", 8)
        merged = endpoint._merge_adjacent(BlockAck(0, 3), BlockAck(4, 6))
        assert merged == BlockAck(0, 6)
        assert endpoint._merge_adjacent(BlockAck(0, 3), BlockAck(5, 6)) is None

    def test_bounded_wraparound_adjacency(self):
        endpoint = DuplexEndpoint("X", 8, numbering=ModularNumbering(8))
        merged = endpoint._merge_adjacent(BlockAck(14, 15), BlockAck(0, 2))
        assert merged == BlockAck(14, 2)  # wraps mod 16


class TestDuplexTransfers:
    def test_lossless_bidirectional(self):
        a, b = make_endpoints()
        result = run_duplex(
            a, b, GreedySource(200), GreedySource(200),
            link_ab=LinkSpec(delay=ConstantDelay(1.0)),
            link_ba=LinkSpec(delay=ConstantDelay(1.0)),
            seed=1, max_time=100_000.0,
        )
        assert result.correct
        assert result.a_to_b_delivered == result.b_to_a_delivered == 200

    def test_lossy_jitter_bidirectional(self):
        a, b = make_endpoints()
        link = lambda: LinkSpec(
            delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(0.08)
        )
        result = run_duplex(
            a, b, GreedySource(200), GreedySource(200),
            link_ab=link(), link_ba=link(), seed=2, max_time=500_000.0,
        )
        assert result.correct

    def test_asymmetric_traffic(self):
        # heavy one way, trickle the other
        a, b = make_endpoints()
        result = run_duplex(
            a, b, GreedySource(300), GreedySource(20),
            link_ab=LinkSpec(delay=ConstantDelay(1.0)),
            link_ba=LinkSpec(delay=ConstantDelay(1.0)),
            seed=3, max_time=100_000.0,
        )
        assert result.correct
        assert result.a_to_b_delivered == 300
        assert result.b_to_a_delivered == 20

    def test_one_way_only(self):
        a, b = make_endpoints()
        result = run_duplex(
            a, b, GreedySource(100), GreedySource(0),
            seed=4, max_time=100_000.0,
        )
        assert result.correct
        assert result.b_to_a_delivered == 0

    def test_poisson_piggybacking_is_effective(self):
        a, b = make_endpoints(hold=1.0)
        link = lambda: LinkSpec(delay=UniformDelay(0.8, 1.2))
        result = run_duplex(
            a, b,
            PoissonSource(250, rate=1.5, rng=random.Random(1)),
            PoissonSource(250, rate=1.5, rng=random.Random(2)),
            link_ab=link(), link_ba=link(), seed=5, max_time=500_000.0,
        )
        assert result.correct
        # arrivals within the hold window: 1 - e^{-1.5} ~ 0.78
        assert result.piggyback_ratio() > 0.5

    def test_piggybacking_reduces_frames(self):
        def run_with_hold(hold):
            a, b = make_endpoints(hold=hold)
            link = lambda: LinkSpec(delay=UniformDelay(0.8, 1.2))
            return run_duplex(
                a, b,
                PoissonSource(250, rate=1.5, rng=random.Random(1)),
                PoissonSource(250, rate=1.5, rng=random.Random(2)),
                link_ab=link(), link_ba=link(), seed=5, max_time=500_000.0,
            )

        tight = run_with_hold(0.05)
        generous = run_with_hold(1.0)
        assert tight.correct and generous.correct
        frames_tight = tight.a_mux["frames_sent"] + tight.b_mux["frames_sent"]
        frames_generous = (
            generous.a_mux["frames_sent"] + generous.b_mux["frames_sent"]
        )
        assert frames_generous < 0.85 * frames_tight

    def test_duplex_over_framed_noisy_links(self):
        class ByteSource(GreedySource):
            def _make_payload(self):
                return f"m{len(self.submitted):04d}".encode()

        a, b = make_endpoints()
        # NOTE: duplex frames are composite objects; the byte codec frames
        # flat messages, so duplex links use plain channels here
        link = lambda: LinkSpec(
            delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(0.1)
        )
        result = run_duplex(
            a, b, ByteSource(150), ByteSource(150),
            link_ab=link(), link_ba=link(), seed=6, max_time=500_000.0,
        )
        assert result.correct

    def test_soak_many_seeds(self):
        for seed in range(5):
            a, b = make_endpoints(window=5)
            link = lambda: LinkSpec(
                delay=UniformDelay(0.3, 1.7), loss=BernoulliLoss(0.12)
            )
            result = run_duplex(
                a, b, GreedySource(120), GreedySource(120),
                link_ab=link(), link_ba=link(), seed=seed,
                max_time=500_000.0,
            )
            assert result.correct, f"seed={seed}: {result.summary()}"

    def test_unbounded_channels_rejected(self):
        from repro.channel.delay import ExponentialDelay

        a, b = make_endpoints()
        with pytest.raises(ValueError, match="bounded"):
            run_duplex(
                a, b, GreedySource(10), GreedySource(10),
                link_ab=LinkSpec(delay=ExponentialDelay(1.0)),
            )
