"""Tests for the duplex combo-frame codec and duplex-over-UDP."""

import pytest
from hypothesis import given, strategies as st

from repro.core.messages import BlockAck, DataMessage
from repro.duplex.codec import decode_frame, encode_frame
from repro.duplex.endpoint import DuplexFrame
from repro.duplex.runner import duplex_over_udp
from repro.wire.codec import CorruptFrame, FrameError


class TestCodecRoundTrip:
    def test_data_only(self):
        frame = DuplexFrame(data=DataMessage(seq=5, payload=b"x", attempt=1))
        decoded = decode_frame(encode_frame(frame))
        assert decoded.data == frame.data and decoded.ack is None

    def test_ack_only(self):
        frame = DuplexFrame(ack=BlockAck(lo=2, hi=6))
        decoded = decode_frame(encode_frame(frame))
        assert decoded.ack == BlockAck(2, 6) and decoded.data is None

    def test_combined(self):
        frame = DuplexFrame(
            data=DataMessage(seq=9, payload=b"payload"),
            ack=BlockAck(lo=0, hi=3),
        )
        decoded = decode_frame(encode_frame(frame))
        assert decoded.data == frame.data
        assert decoded.ack == frame.ack

    def test_none_payload_becomes_empty(self):
        frame = DuplexFrame(data=DataMessage(seq=0))
        assert decode_frame(encode_frame(frame)).data.payload == b""

    @given(
        seq=st.integers(min_value=0, max_value=0xFFFF),
        lo=st.integers(min_value=0, max_value=0xFFFF),
        hi=st.integers(min_value=0, max_value=0xFFFF),
        payload=st.binary(max_size=128),
        has_data=st.booleans(),
        has_ack=st.booleans(),
    )
    def test_roundtrip_property(self, seq, lo, hi, payload, has_data, has_ack):
        if not has_data and not has_ack:
            return
        frame = DuplexFrame(
            data=DataMessage(seq=seq, payload=payload) if has_data else None,
            ack=BlockAck(lo, hi) if has_ack else None,
        )
        decoded = decode_frame(encode_frame(frame))
        assert decoded.data == frame.data
        assert decoded.ack == frame.ack


class TestCodecValidation:
    def test_empty_frame_rejected(self):
        with pytest.raises(FrameError):
            encode_frame(DuplexFrame())

    def test_non_bytes_payload_rejected(self):
        with pytest.raises(FrameError):
            encode_frame(DuplexFrame(data=DataMessage(seq=0, payload=123)))

    def test_bit_flip_detected(self):
        blob = bytearray(
            encode_frame(DuplexFrame(data=DataMessage(seq=1, payload=b"abc")))
        )
        blob[3] ^= 0x40
        with pytest.raises(CorruptFrame):
            decode_frame(bytes(blob))

    def test_short_blob_rejected(self):
        with pytest.raises(CorruptFrame):
            decode_frame(b"xy")

    @given(garbage=st.binary(max_size=128))
    def test_decoder_never_crashes(self, garbage):
        try:
            decode_frame(garbage)
        except CorruptFrame:
            pass


class TestDuplexOverUdp:
    def test_lossless_bidirectional(self):
        a = [f"a{i:03d}".encode() for i in range(40)]
        b = [f"b{i:03d}".encode() for i in range(40)]
        result = duplex_over_udp(a, b, deadline=15.0, seed=1)
        assert result.correct
        assert result.a_to_b_delivered == result.b_to_a_delivered == 40

    def test_lossy_bidirectional(self):
        a = [f"a{i:03d}".encode() for i in range(30)]
        b = [f"b{i:03d}".encode() for i in range(30)]
        result = duplex_over_udp(
            a, b, loss=0.1, timeout_period=0.1, deadline=25.0, seed=2
        )
        assert result.correct

    def test_asymmetric(self):
        a = [b"only-a"] * 25
        result = duplex_over_udp(a, [], deadline=15.0, seed=3)
        assert result.correct
        assert result.b_to_a_delivered == 0

    def test_non_bytes_rejected(self):
        with pytest.raises(TypeError):
            duplex_over_udp(["text"], [])
