"""The no-duplication assumption boundary.

Assertion 8 demands at most one copy of every message or acknowledgment
in transit — the paper's channels may lose and reorder but never
duplicate.  These tests map that boundary:

* the channel's duplication knob works mechanically;
* a duplicating channel immediately trips the runtime invariant monitor
  (the protocol's precondition is violated by the environment);
* with *unbounded* numbering the protocol happens to survive duplication
  (duplicates are recognized by value) — an implementation robustness
  fact, not a paper guarantee;
* the *monitor* reports exactly the clause the paper singles out.
"""

import random

from repro.channel.channel import Channel
from repro.channel.delay import ConstantDelay, UniformDelay
from repro.core.numbering import ModularNumbering
from repro.protocols.blockack import BlockAckReceiver, BlockAckSender
from repro.sim.runner import LinkSpec, run_transfer
from repro.workloads.sources import GreedySource


class TestChannelDuplication:
    def test_duplicates_deliver_twice(self, sim):
        channel = Channel(
            sim, delay=ConstantDelay(1.0), duplicate_probability=1.0,
            rng=random.Random(1),
        )
        received = []
        channel.connect(received.append)
        channel.send("x")
        sim.run()
        assert received == ["x", "x"]
        assert channel.stats.duplicated == 1

    def test_zero_probability_is_default(self, sim):
        channel = Channel(sim, rng=random.Random(1))
        received = []
        channel.connect(received.append)
        for index in range(50):
            channel.send(index)
        sim.run()
        assert len(received) == 50
        assert channel.stats.duplicated == 0

    def test_stats_reconcile_with_duplication(self, sim):
        channel = Channel(
            sim, duplicate_probability=0.5, rng=random.Random(2)
        )
        channel.connect(lambda m: None)
        for index in range(200):
            channel.send(index)
        sim.run()
        stats = channel.stats
        assert (
            stats.delivered + stats.lost + stats.aged_out
            == stats.sent + stats.duplicated
        )


class TestProtocolUnderDuplication:
    def test_monitor_flags_duplicating_environment(self):
        sender = BlockAckSender(6, timeout_mode="per_message_safe")
        receiver = BlockAckReceiver(6)
        result = run_transfer(
            sender, receiver, GreedySource(100),
            forward=LinkSpec(
                delay=UniformDelay(0.5, 1.5), duplicate_probability=0.3
            ),
            reverse=LinkSpec(delay=UniformDelay(0.5, 1.5)),
            seed=3, monitor_invariants=True, max_time=100_000.0,
        )
        assert not result.monitor.clean
        assert any(
            "duplicate data in transit" in violation.clause
            for violation in result.monitor.violations
        )

    def test_unbounded_numbering_happens_to_survive(self):
        # duplicates of true-numbered messages are recognized by value,
        # so the unbounded implementation stays correct (robustness
        # beyond the paper's model — its proofs do NOT cover this)
        sender = BlockAckSender(6, timeout_mode="per_message_safe")
        receiver = BlockAckReceiver(6)
        link = lambda: LinkSpec(
            delay=UniformDelay(0.5, 1.5), duplicate_probability=0.2
        )
        result = run_transfer(
            sender, receiver, GreedySource(200),
            forward=link(), reverse=link(), seed=4, max_time=100_000.0,
        )
        assert result.completed and result.in_order
        assert result.receiver_stats["duplicates"] > 0

    def test_bounded_numbering_survives_mild_duplication_with_margin(self):
        # with mod-2w numbers, duplicates age out of the decode window
        # long before nr can run a full window past them on these short
        # links, so mild duplication is absorbed too — the danger zone
        # needs duplicates that outlive w messages of progress
        numbering = ModularNumbering(6)
        sender = BlockAckSender(
            6, numbering=numbering, timeout_mode="per_message_safe"
        )
        receiver = BlockAckReceiver(6, numbering=numbering)
        link = lambda: LinkSpec(
            delay=UniformDelay(0.9, 1.1), duplicate_probability=0.1
        )
        result = run_transfer(
            sender, receiver, GreedySource(150),
            forward=link(), reverse=link(), seed=5, max_time=100_000.0,
        )
        assert result.completed and result.in_order
