"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; letting them rot defeats the
point.  Marked slow — run with ``pytest -m slow`` or plain ``pytest``
(the default suite includes them; deselect with ``-m 'not slow'``).
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.slow
@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[script.stem for script in EXAMPLES]
)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, (
        f"{script.name} failed:\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{script.name} produced no output"


def test_examples_exist():
    assert len(EXAMPLES) >= 10
    names = {script.stem for script in EXAMPLES}
    assert "quickstart" in names
