"""Tests for the experiment suite (structure + quick-mode reproduction)."""

import pytest

from repro.experiments.common import (
    fifo_link,
    jitter_link,
    longtail_link,
    lossy_link,
    run_protocol,
)
from repro.experiments.registry import (
    EXPERIMENTS,
    experiment_ids,
    get_experiment,
    run_experiment,
)


class TestRegistryStructure:
    def test_seventeen_experiments(self):
        assert experiment_ids() == [f"e{i}" for i in range(1, 18)]

    def test_every_spec_has_claim_and_title(self):
        for spec in EXPERIMENTS.values():
            assert spec.claim and spec.title
            assert spec.exp_id.startswith("E")

    def test_lookup_case_insensitive(self):
        assert get_experiment("E3") is get_experiment("e3")

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            get_experiment("e99")


class TestLinks:
    def test_fifo_is_constant(self):
        assert fifo_link().delay.max_delay == 1.0

    def test_jitter_mean_is_one(self):
        link = jitter_link(1.0)
        assert link.delay.mean_delay == pytest.approx(1.0)

    def test_jitter_clamps_at_zero(self):
        link = jitter_link(4.0)
        assert link.delay.low == 0.0

    def test_lossy_link_probability(self):
        assert lossy_link(0.1).loss.p == 0.1

    def test_longtail_has_aging(self):
        assert longtail_link().max_lifetime == 25.0

    def test_negative_spread_rejected(self):
        with pytest.raises(ValueError):
            jitter_link(-1.0)


class TestRunProtocol:
    def test_returns_transfer_result(self):
        result = run_protocol(
            "blockack", 4, 50, fifo_link(), fifo_link(), seed=1
        )
        assert result.completed and result.in_order


@pytest.mark.slow
class TestQuickReproduction:
    """Every experiment must reproduce its claim, even in quick mode."""

    @pytest.mark.parametrize("exp_id", [f"e{i}" for i in range(1, 17)])
    def test_experiment_reproduces(self, exp_id):
        result = run_experiment(exp_id, quick=True)
        assert result.reproduced, result.render()
        assert result.table
        assert result.findings


class TestResultRendering:
    def test_render_contains_verdict(self):
        result = run_experiment("e1", quick=True)
        text = result.render()
        assert "[E1]" in text
        assert "paper claim" in text
        assert "REPRODUCED" in text
