"""Tests for the Section VI extensions: variable windows, position reuse."""

import pytest

from repro.channel.delay import ConstantDelay, UniformDelay
from repro.channel.impairments import BernoulliLoss
from repro.core.numbering import ModularNumbering
from repro.core.window import SenderWindow
from repro.protocols.ack_policy import CountingAckPolicy
from repro.protocols.blockack import BlockAckReceiver, BlockAckSender
from repro.sim.runner import LinkSpec, run_transfer
from repro.workloads.sources import GreedySource


class TestVariableWindowBookkeeping:
    def test_resize_within_max(self):
        window = SenderWindow(8)
        window.resize(4)
        assert window.w == 4
        window.resize(8)
        assert window.w == 8

    def test_resize_beyond_max_rejected(self):
        window = SenderWindow(8)
        with pytest.raises(ValueError):
            window.resize(9)
        with pytest.raises(ValueError):
            window.resize(0)

    def test_shrink_below_occupancy_blocks_sending(self):
        window = SenderWindow(8)
        for _ in range(6):
            window.take_next()
        window.resize(4)
        assert not window.can_send
        window.apply_ack(0, 2)  # occupancy drops to 3 < 4
        assert window.can_send

    def test_invariant_holds_through_resizes(self):
        window = SenderWindow(8)
        for _ in range(5):
            window.take_next()
        window.resize(2)
        window.check_invariant()
        window.apply_ack(0, 4)
        window.check_invariant()

    def test_explicit_max_window(self):
        window = SenderWindow(4, max_window=16)
        window.resize(16)
        assert window.w == 16
        with pytest.raises(ValueError):
            SenderWindow(8, max_window=4)


class TestVariableWindowEndpoint:
    def test_resize_wakes_source(self):
        sender = BlockAckSender(8)
        receiver = BlockAckReceiver(8)
        sender.resize_window(2)
        result_source = GreedySource(50)
        # grow mid-transfer: schedule a resize and verify completion
        result = run_transfer(
            sender, receiver, result_source,
            forward=LinkSpec(delay=ConstantDelay(1.0)),
            reverse=LinkSpec(delay=ConstantDelay(1.0)),
            seed=0,
        )
        assert result.completed and result.in_order

    def test_shrink_then_grow_with_loss(self):
        numbering = ModularNumbering(8)
        sender = BlockAckSender(
            8, numbering=numbering, timeout_mode="per_message_safe"
        )
        receiver = BlockAckReceiver(8, numbering=numbering)
        link = lambda: LinkSpec(
            delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(0.05)
        )

        # resize repeatedly during the transfer via a scheduled toggler
        original_attach = sender._after_attach

        def attach_with_toggler():
            original_attach()
            step = 0

            def toggle():
                nonlocal step
                step += 1
                sender.resize_window(2 if step % 2 else 8)
                if step < 20:
                    sender.sim.schedule(5.0, toggle)

            sender.sim.schedule(5.0, toggle)

        sender._after_attach = attach_with_toggler
        result = run_transfer(
            sender, receiver, GreedySource(200),
            forward=link(), reverse=link(), seed=7, max_time=100_000.0,
        )
        assert result.completed and result.in_order


class TestPositionReuseBookkeeping:
    def test_lookahead_guard(self):
        window = SenderWindow(2, lookahead=2)
        a = window.take_next()
        b = window.take_next()
        assert not window.can_send  # occupancy bound: 2 unacked
        window.apply_ack(b, b)  # hole: b acked, a outstanding
        assert window.can_send  # K=1 would block (ns = na + w)
        window.take_next()
        assert not window.can_send  # occupancy 2 again

    def test_lookahead_sequence_bound(self):
        window = SenderWindow(2, lookahead=2)
        sent = [window.take_next(), window.take_next()]
        window.apply_ack(1, 1)
        window.take_next()
        window.apply_ack(2, 2)
        window.take_next()
        window.apply_ack(3, 3)
        # na=0 still; ns=4 = na + K*w: sequence lookahead now binds
        assert window.ns == 4
        assert not window.can_send

    def test_lookahead_one_is_paper_guard(self):
        classic = SenderWindow(4)
        extended = SenderWindow(4, lookahead=1)
        for _ in range(4):
            classic.take_next()
            extended.take_next()
        assert classic.can_send == extended.can_send == False

    def test_invalid_lookahead(self):
        with pytest.raises(ValueError):
            SenderWindow(4, lookahead=0)


class TestPositionReuseNumbering:
    def test_safe_domain_scales_with_lookahead(self):
        assert ModularNumbering(8, lookahead=2).domain_size == 32
        assert ModularNumbering(8, lookahead=4).domain_size == 64

    def test_undersized_reuse_domain_rejected(self):
        with pytest.raises(ValueError):
            ModularNumbering(8, domain_size=16, lookahead=2)

    def test_receiver_decode_uses_wide_span(self):
        numbering = ModularNumbering(4, lookahead=2)  # span 8, domain 16
        for nr in range(0, 30):
            low = max(0, nr - 8)
            for value in range(low, nr + 8):
                wire = numbering.encode(value)
                assert numbering.decode_at_receiver(wire, nr, 4) == value


class TestPositionReuseEndToEnd:
    @pytest.mark.parametrize("lookahead", [2, 3])
    def test_correct_under_ack_loss(self, lookahead):
        numbering = ModularNumbering(8, lookahead=lookahead)
        sender = BlockAckSender(
            8, numbering=numbering, timeout_mode="per_message_safe",
            lookahead=lookahead,
        )
        receiver = BlockAckReceiver(
            8, numbering=numbering, ack_policy=CountingAckPolicy(4, 0.5)
        )
        result = run_transfer(
            sender, receiver, GreedySource(200),
            forward=LinkSpec(delay=ConstantDelay(1.0)),
            reverse=LinkSpec(delay=ConstantDelay(1.0), loss=BernoulliLoss(0.2)),
            seed=9, max_time=100_000.0,
        )
        assert result.completed and result.in_order

    def test_correct_under_bidirectional_adversity(self):
        numbering = ModularNumbering(6, lookahead=2)
        sender = BlockAckSender(
            6, numbering=numbering, timeout_mode="per_message_safe", lookahead=2
        )
        receiver = BlockAckReceiver(6, numbering=numbering)
        link = lambda: LinkSpec(
            delay=UniformDelay(0.3, 1.7), loss=BernoulliLoss(0.12)
        )
        result = run_transfer(
            sender, receiver, GreedySource(150),
            forward=link(), reverse=link(), seed=10, max_time=500_000.0,
        )
        assert result.completed and result.in_order

    def test_reuse_actually_sends_ahead(self):
        """With acked holes, ns runs past na + w (impossible at K=1)."""
        numbering = ModularNumbering(4, lookahead=2)
        sender = BlockAckSender(
            4, numbering=numbering, timeout_mode="per_message_safe", lookahead=2
        )
        receiver = BlockAckReceiver(
            4, numbering=numbering, ack_policy=CountingAckPolicy(2, 0.3)
        )
        max_spread = []
        original = sender.submit

        def tracking_submit(payload):
            seq = original(payload)
            max_spread.append(sender.window.ns - sender.window.na)
            return seq

        sender.submit = tracking_submit
        result = run_transfer(
            sender, receiver, GreedySource(150),
            forward=LinkSpec(delay=ConstantDelay(1.0)),
            reverse=LinkSpec(delay=ConstantDelay(1.0), loss=BernoulliLoss(0.3)),
            seed=11, max_time=100_000.0,
        )
        assert result.completed and result.in_order
        assert max(max_spread) > 4  # sequence range exceeded w: reuse happened
