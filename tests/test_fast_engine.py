"""Edge cases specific to the calendar-queue engine (``FastSimulator``).

The shared engine contract is enforced by ``test_sim_engine.py`` (whose
``sim`` fixture is parametrized over both engines).  These tests target
the machinery the heap engine doesn't have: year-bucket scanning across
cancelled heads, the noop-substitution cancel in the batched drain,
bucket resizing mid-run, instrument swaps between the lean and
instrumented drain loops, and cross-process determinism.
"""

import subprocess
import sys

import pytest

from repro.sim.engine import (
    ENGINES,
    FastSimulator,
    Simulator,
    make_simulator,
)


def test_make_simulator_engines():
    assert isinstance(make_simulator("default"), Simulator)
    assert isinstance(make_simulator("fast"), FastSimulator)
    with pytest.raises(ValueError):
        make_simulator("warp")
    assert set(ENGINES) == {"default", "fast"}


class TestPeekAcrossCancelledHeads:
    def test_peek_skips_cancelled_head(self):
        sim = FastSimulator()
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek_time() == 2.0

    def test_peek_skips_run_of_cancelled_heads_across_buckets(self):
        # Cancel heads spread over many year-buckets so the scan has to
        # walk buckets (and wrap years) before finding a live event.
        sim = FastSimulator()
        doomed = [sim.schedule(float(i), lambda: None) for i in range(50)]
        survivor = sim.schedule(50.0, lambda: None)
        for event in doomed:
            event.cancel()
        assert sim.peek_time() == 50.0
        assert survivor.pending
        sim.run()
        assert sim.now == 50.0
        # cancelled events are discarded, not fired
        assert sim.events_processed == 1

    def test_peek_empty_after_all_cancelled(self):
        sim = FastSimulator()
        events = [sim.schedule(float(i), lambda: None) for i in range(10)]
        for event in events:
            event.cancel()
        assert sim.peek_time() is None
        sim.run()
        assert sim.events_processed == 0


class TestIntraBatchCancel:
    """A callback cancelling a same-timestamp, not-yet-fired event.

    Both engines must skip the cancelled event even though it was
    already pulled into the current batch (fast engine) or sits at the
    heap top (default engine).  The noop-substitution cancel makes this
    work without a per-event branch in the lean drain loop.
    """

    @pytest.mark.parametrize("engine", ENGINES)
    def test_cancel_later_event_in_same_batch(self, engine):
        sim = make_simulator(engine)
        seen = []
        victim_box = []

        def assassin():
            seen.append("assassin")
            victim_box[0].cancel()

        # assassin has the earlier seq, so it fires first within the
        # same-timestamp batch and cancels the already-pulled victim
        sim.schedule(1.0, assassin)
        victim_box.append(sim.schedule(1.0, seen.append, "victim"))
        sim.run()
        assert seen == ["assassin"]
        assert not victim_box[0].pending

    @pytest.mark.parametrize("engine", ENGINES)
    def test_cancelled_batch_member_not_counted_as_processed(self, engine):
        sim = make_simulator(engine)
        victim_box = []

        def assassin():
            victim_box[0].cancel()

        sim.schedule(1.0, assassin)
        victim_box.append(sim.schedule(1.0, lambda: None))
        sim.schedule(1.0, lambda: None)
        sim.run()
        # assassin + trailing noop fire; the victim must not be counted
        assert sim.events_processed == 2

    @pytest.mark.parametrize("engine", ENGINES)
    def test_double_cancel_is_idempotent(self, engine):
        sim = make_simulator(engine)
        victim_box = []

        def assassin():
            victim_box[0].cancel()
            victim_box[0].cancel()  # must not un-swap the noop

        sim.schedule(1.0, assassin)
        victim_box.append(sim.schedule(1.0, lambda: None))
        sim.run()
        assert sim.events_processed == 1
        assert not victim_box[0].pending


class TestZeroDelayTies:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_zero_delay_self_reschedule_preserves_fifo(self, engine):
        """Zero-delay rescheduling at the current timestamp: new events
        join the *end* of the current batch (seq order), exactly like
        the heap engine's tie-break."""
        sim = make_simulator(engine)
        order = []

        def ping(tag, remaining):
            order.append(tag)
            if remaining:
                sim.schedule(0.0, ping, tag, remaining - 1)

        sim.schedule(1.0, ping, "a", 2)
        sim.schedule(1.0, ping, "b", 2)
        sim.run()
        assert order == ["a", "b", "a", "b", "a", "b"]
        assert sim.now == 1.0

    def test_schedule_at_into_current_bucket(self):
        """schedule_at targeting the bucket currently being drained."""
        sim = FastSimulator()
        seen = []

        def first():
            seen.append(("first", sim.now))
            # same year-bucket as the executing batch, later time
            sim.schedule_at(1.0 + 1e-9, lambda: seen.append(("second", sim.now)))

        sim.schedule_at(1.0, first)
        sim.run()
        assert [tag for tag, _ in seen] == ["first", "second"]
        times = [t for _, t in seen]
        assert times[0] == 1.0 and times[1] > 1.0

    def test_same_time_schedule_at_from_callback_joins_batch(self):
        sim = FastSimulator()
        seen = []

        def first():
            seen.append("first")
            sim.schedule_at(sim.now, lambda: seen.append("tail"))

        sim.schedule_at(1.0, first)
        sim.schedule_at(1.0, lambda: seen.append("middle"))
        sim.run()
        assert seen == ["first", "middle", "tail"]


class TestResizeMidRun:
    def test_growth_through_many_resizes_keeps_order(self):
        """Push enough events through to force several quadrupling
        resizes while the drain is running; order must stay exact."""
        sim = FastSimulator()
        fired = []

        def burst(base):
            fired.append(base)
            if base < 5:
                # fan a fresh wave out from inside a callback so the
                # resize happens while _running is True (deferred path)
                for offset in range(400):
                    sim.schedule(
                        0.5 + (offset % 7) * 0.125,
                        fired.append,
                        (base, offset),
                    )
                sim.schedule(10.0, burst, base + 1)

        sim.schedule(0.0, burst, 0)
        sim.run()
        assert sim.pending_count == 0
        assert len(fired) == 6 + 5 * 400
        # cross-check the exact sequence against the heap engine
        ref_sim = Simulator()
        ref_fired = []

        def ref_burst(base):
            ref_fired.append(base)
            if base < 5:
                for offset in range(400):
                    ref_sim.schedule(
                        0.5 + (offset % 7) * 0.125,
                        ref_fired.append,
                        (base, offset),
                    )
                ref_sim.schedule(10.0, ref_burst, base + 1)

        ref_sim.schedule(0.0, ref_burst, 0)
        ref_sim.run()
        assert fired == ref_fired
        assert sim.now == ref_sim.now
        assert sim.events_processed == ref_sim.events_processed


class TestInstrumentSwap:
    class _Instruments:
        def __init__(self):
            self.schedules = []
            self.fires = []
            self.discards = 0

        def on_schedule(self, queue_len):
            self.schedules.append(queue_len)

        def on_fire(self, queue_len):
            self.fires.append(queue_len)

        def on_cancel_discard(self):
            self.discards += 1

    @pytest.mark.parametrize("engine", ENGINES)
    def test_mid_run_attach_defers_drain_hooks_to_next_run(self, engine):
        """Both engines bind the drain body once per ``run()`` call: a
        mid-run attach leaves the current (lean) drain untouched, but
        the *schedule* hook — swapped as an instance attribute — is
        live immediately, and the next drain call is instrumented."""
        sim = make_simulator(engine)
        instruments = self._Instruments()
        seen = []

        def attach():
            seen.append("attach")
            sim.set_instruments(instruments)
            # schedule() is already the instrumented twin here
            sim.schedule(1.0, seen.append, "post-attach")

        sim.schedule(1.0, attach)
        sim.schedule(2.0, seen.append, "observed-a")
        sim.run()
        assert seen == ["attach", "observed-a", "post-attach"]
        assert sim.events_processed == 3
        assert len(instruments.schedules) == 1  # the post-attach schedule
        assert instruments.fires == []  # this drain stayed lean

        sim.schedule(1.0, seen.append, "next-run")
        sim.run()
        assert seen[-1] == "next-run"
        assert len(instruments.fires) == 1  # fresh drain is instrumented

    @pytest.mark.parametrize("engine", ENGINES)
    def test_mid_run_detach_keeps_current_drain_instrumented(self, engine):
        sim = make_simulator(engine)
        instruments = self._Instruments()
        sim.set_instruments(instruments)
        seen = []

        def detach():
            seen.append("detach")
            sim.set_instruments(None)

        sim.schedule(1.0, detach)
        sim.schedule(2.0, seen.append, "after")
        sim.run()
        assert seen == ["detach", "after"]
        assert sim.events_processed == 2
        # the in-flight drain captured the instruments at entry...
        assert len(instruments.fires) == 2
        assert len(instruments.schedules) == 2
        # ...but the next drain (and schedule) runs lean again
        sim.schedule(1.0, seen.append, "lean")
        sim.run()
        assert len(instruments.fires) == 2
        assert len(instruments.schedules) == 2


class TestExceptionPropagation:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_exception_preserves_pending_events(self, engine):
        """A raising callback leaves the rest of the queue intact and
        resumable, and counts the raising event as processed."""
        sim = make_simulator(engine)
        seen = []

        def boom():
            seen.append("boom")
            raise RuntimeError("bang")

        sim.schedule(1.0, seen.append, "before")
        sim.schedule(2.0, boom)
        sim.schedule(2.0, seen.append, "same-time-later")
        sim.schedule(3.0, seen.append, "after")
        with pytest.raises(RuntimeError):
            sim.run()
        assert seen == ["before", "boom"]
        assert sim.events_processed == 2
        assert sim.pending_count == 2
        sim.run()  # resumable: the put-back events still fire in order
        assert seen == ["before", "boom", "same-time-later", "after"]
        assert sim.events_processed == 4

    @pytest.mark.parametrize("engine", ENGINES)
    def test_exception_with_cancelled_batch_member(self, engine):
        sim = make_simulator(engine)
        victim_box = []

        def boom():
            victim_box[0].cancel()
            raise RuntimeError("bang")

        sim.schedule(1.0, boom)
        victim_box.append(sim.schedule(1.0, lambda: None))
        sim.schedule(1.0, lambda: None)
        with pytest.raises(RuntimeError):
            sim.run()
        # boom fired (and is counted); victim was cancelled, not fired
        assert sim.events_processed == 1
        assert sim.pending_count == 1


_DETERMINISM_SNIPPET = """
import json
from repro.sim.engine import make_simulator

sim = make_simulator("fast")
log = []

def tick(tag, n):
    log.append((sim.now, tag))
    if n:
        sim.schedule(0.25 + (n % 5) * 0.125, tick, tag, n - 1)

for tag in ("a", "b", "c"):
    sim.schedule(1.0, tick, tag, 40)
sim.run()
print(json.dumps([sim.events_processed, sim.now, log]))
"""


def test_fast_engine_deterministic_across_hash_seeds():
    """The calendar queue must not depend on hash ordering: identical
    runs under different PYTHONHASHSEED values produce identical logs."""
    outputs = set()
    for hash_seed in ("0", "1", "424242"):
        result = subprocess.run(
            [sys.executable, "-c", _DETERMINISM_SNIPPET],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": hash_seed},
            check=True,
        )
        outputs.add(result.stdout)
    assert len(outputs) == 1
