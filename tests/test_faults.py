"""Tests for scripted fault injection (repro.robustness.faults).

Brownout loss ramps, frame corruption, and endpoint crash/restart — each
checked in isolation and then end to end through ``run_transfer`` with
the invariant monitor watching.
"""

import random

import pytest

from repro.channel.impairments import (
    BernoulliLoss,
    BrownoutLoss,
    FrameCorruption,
    NoLoss,
)
from repro.experiments.common import lossy_link
from repro.protocols.registry import make_pair
from repro.robustness.faults import CrashRestart, FaultPlan
from repro.sim.runner import run_transfer
from repro.workloads.sources import GreedySource


class TestBrownoutLoss:
    RAMP = [(10.0, 0.0), (20.0, 1.0), (30.0, 1.0), (40.0, 0.0)]

    def test_zero_outside_scripted_range(self):
        loss = BrownoutLoss(self.RAMP)
        assert loss.probability_at(5.0) == 0.0
        assert loss.probability_at(45.0) == 0.0

    def test_linear_interpolation(self):
        loss = BrownoutLoss(self.RAMP)
        assert loss.probability_at(15.0) == pytest.approx(0.5)
        assert loss.probability_at(25.0) == 1.0
        assert loss.probability_at(35.0) == pytest.approx(0.5)

    def test_drops_at_honors_ramp(self, rng):
        loss = BrownoutLoss(self.RAMP)
        assert not any(loss.drops_at(rng, 5.0) for _ in range(100))
        assert all(loss.drops_at(rng, 25.0) for _ in range(100))

    def test_time_free_drops_entry_point_rejected(self, rng):
        with pytest.raises(RuntimeError):
            BrownoutLoss(self.RAMP).drops(rng)

    def test_composes_over_base_model(self, rng):
        always = BrownoutLoss(self.RAMP, base=BernoulliLoss(1.0))
        assert always.drops_at(rng, 5.0)  # base drops even outside the ramp
        never = BrownoutLoss(self.RAMP, base=NoLoss())
        assert not never.drops_at(rng, 5.0)

    def test_reset_delegates_to_base(self, rng):
        from repro.channel.impairments import ScriptedLoss

        base = ScriptedLoss([0])
        loss = BrownoutLoss(self.RAMP, base=base)
        assert loss.drops_at(rng, 5.0)  # consumes scripted index 0
        loss.reset()
        assert loss.drops_at(rng, 5.0)  # replays after reset

    def test_validation(self):
        with pytest.raises(ValueError):
            BrownoutLoss([])
        with pytest.raises(ValueError):
            BrownoutLoss([(10.0, 0.0), (5.0, 0.5)])  # times decrease
        with pytest.raises(ValueError):
            BrownoutLoss([(0.0, 1.5)])  # probability out of range


class TestFrameCorruption:
    def test_rate(self):
        rng = random.Random(9)
        corruption = FrameCorruption(0.3)
        hits = sum(corruption.corrupts(rng) for _ in range(10_000))
        assert 0.27 < hits / 10_000 < 0.33

    def test_zero_never_corrupts(self, rng):
        assert not any(FrameCorruption(0.0).corrupts(rng) for _ in range(100))

    def test_validation(self):
        with pytest.raises(ValueError):
            FrameCorruption(1.5)


class TestCrashRestart:
    def test_validation(self):
        with pytest.raises(ValueError):
            CrashRestart(at=-1.0)
        with pytest.raises(ValueError):
            CrashRestart(at=1.0, outage=-0.5)
        with pytest.raises(ValueError):
            CrashRestart(at=1.0, endpoint="router")


def run_with_plan(plan, total=150, seed=11, **pair_kwargs):
    sender, receiver = make_pair(
        "blockack",
        window=6,
        timeout_mode=pair_kwargs.pop("timeout_mode", "per_message_safe"),
        **pair_kwargs,
    )
    result = run_transfer(
        sender,
        receiver,
        GreedySource(total),
        forward=lossy_link(0.02),
        reverse=lossy_link(0.02),
        seed=seed,
        max_time=50_000.0,
        monitor_invariants=True,
        fault_plan=plan,
    )
    return result


class TestFaultPlan:
    def test_corruption_counted_and_survived(self):
        plan = FaultPlan(
            forward_corruption=FrameCorruption(0.05),
            reverse_corruption=FrameCorruption(0.05),
            seed=4,
        )
        result = run_with_plan(plan)
        assert result.completed and result.in_order
        assert result.monitor.violations == []
        assert plan.stats.corrupt_forward > 0
        assert plan.stats.corrupt_reverse > 0
        assert result.fault_stats == plan.stats.as_dict()

    def test_sender_crash_restart_recovers(self):
        plan = FaultPlan(
            crashes=[CrashRestart(at=30.0, outage=8.0, endpoint="sender")]
        )
        result = run_with_plan(plan)
        assert result.completed and result.in_order
        assert result.monitor.violations == []
        assert plan.stats.crashes == 1 and plan.stats.restarts == 1

    def test_receiver_crash_restart_recovers(self):
        plan = FaultPlan(
            crashes=[CrashRestart(at=30.0, outage=8.0, endpoint="receiver")]
        )
        result = run_with_plan(plan)
        assert result.completed and result.in_order
        assert result.monitor.violations == []
        assert plan.stats.crashes == 1 and plan.stats.restarts == 1

    def test_deliveries_into_crashed_endpoint_are_dropped(self):
        # long outage on a busy transfer: something must arrive at the
        # dead receiver and be discarded
        plan = FaultPlan(
            crashes=[CrashRestart(at=20.0, outage=15.0, endpoint="receiver")]
        )
        result = run_with_plan(plan, total=200)
        assert result.completed and result.in_order
        assert plan.stats.dropped_while_down > 0

    def test_brownout_installed_over_existing_loss(self):
        plan = FaultPlan(
            forward_brownout=[(20.0, 0.0), (30.0, 0.8), (40.0, 0.8), (50.0, 0.0)],
            seed=2,
        )
        result = run_with_plan(plan)
        assert result.completed and result.in_order
        assert result.monitor.violations == []
        # the composed model kept the base Bernoulli loss active
        assert result.forward_stats["lost"] > 0

    def test_crash_with_adaptive_sender(self):
        from repro.robustness.controller import AdaptiveConfig

        plan = FaultPlan(
            forward_brownout=[(20.0, 0.0), (25.0, 0.6), (35.0, 0.6), (40.0, 0.0)],
            crashes=[CrashRestart(at=45.0, outage=5.0, endpoint="sender")],
        )
        result = run_with_plan(plan, adaptive=AdaptiveConfig())
        assert result.completed and result.in_order
        assert result.monitor.violations == []
        # crash wiped the estimator: samples restarted from zero after t=45
        assert result.sender_stats["adaptive"]["rtt_samples"] > 0

    def test_simple_mode_survives_sender_crash(self):
        plan = FaultPlan(
            crashes=[CrashRestart(at=40.0, outage=5.0, endpoint="sender")]
        )
        result = run_with_plan(plan, timeout_mode="simple", total=80)
        assert result.completed and result.in_order
        assert result.monitor.violations == []


class TestPlanInstallLifecycle:
    """One plan wires into one transfer; the runner always unwires it."""

    BROWNOUT = [(20.0, 0.0), (30.0, 0.9), (40.0, 0.9), (50.0, 0.0)]

    def _wired(self):
        from repro.channel.channel import Channel
        from repro.sim.engine import Simulator

        sim = Simulator()
        forward = Channel(sim, rng=random.Random(1), name="fwd")
        reverse = Channel(sim, rng=random.Random(2), name="rev")
        sender, receiver = make_pair("blockack", window=4)
        forward.connect(receiver.on_message)
        reverse.connect(sender.on_message)
        return sim, forward, reverse, sender, receiver

    def test_reinstall_raises(self):
        sim, forward, reverse, sender, receiver = self._wired()
        plan = FaultPlan(forward_brownout=self.BROWNOUT)
        plan.install(sim, forward, reverse, sender, receiver)
        with pytest.raises(RuntimeError):
            plan.install(sim, forward, reverse, sender, receiver)

    def test_uninstall_restores_original_loss_models(self):
        sim, forward, reverse, sender, receiver = self._wired()
        original_forward, original_reverse = forward.loss, reverse.loss
        plan = FaultPlan(forward_brownout=self.BROWNOUT)
        plan.install(sim, forward, reverse, sender, receiver)
        assert isinstance(forward.loss, BrownoutLoss)
        plan.uninstall()
        assert forward.loss is original_forward
        assert reverse.loss is original_reverse

    def test_runner_uninstalls_after_the_transfer(self):
        # crash scheduled inside the brownout ramp: the regression this
        # pins is the runner leaving the plan's wrapped loss model on the
        # channel after such a run, so a later Channel.reset would replay
        # a different rng stream
        plan = FaultPlan(
            forward_brownout=self.BROWNOUT,
            crashes=[CrashRestart(at=32.0, outage=6.0, endpoint="sender")],
            seed=2,
        )
        result = run_with_plan(plan)
        assert result.completed
        assert plan.stats.crashes == 1 and plan.stats.restarts == 1
        assert not plan._installed
        forward, reverse = plan._channels
        assert not isinstance(forward.loss, BrownoutLoss)
        assert not isinstance(reverse.loss, BrownoutLoss)

    def test_crash_during_brownout_restores_deterministic_stream(self):
        # a crash/restart scheduled inside the brownout ramp, then the
        # channel is reset and reused: the repeat run must replay the
        # channel's own (stateful, scripted) loss stream exactly as a
        # twin channel that never saw the faults — i.e. uninstall+reset
        # leave no trace of the wrapped model
        from repro.channel.channel import Channel
        from repro.channel.impairments import ScriptedLoss
        from repro.sim.engine import Simulator

        def replay(fault_first):
            sim = Simulator()
            channel = Channel(
                sim,
                loss=ScriptedLoss([3, 9, 17]),
                rng=random.Random(7),
                name="fwd",
            )
            channel.connect(lambda message: None)
            if fault_first:
                reverse = Channel(sim, rng=random.Random(8), name="rev")
                sender, receiver = make_pair("blockack", window=4)
                reverse.connect(sender.on_message)
                plan = FaultPlan(
                    forward_brownout=self.BROWNOUT,
                    crashes=[CrashRestart(at=32.0, outage=6.0)],
                    seed=2,
                )
                plan.install(sim, channel, reverse, sender, receiver)
                # probes stand in for protocol traffic: bypass the
                # interceptor (we only exercise the loss-model state)
                channel.connect(lambda message: None)
                for t in range(45):
                    sim.schedule_at(float(t), channel.send, f"probe-{t}")
                sim.run(until=60.0)
                assert plan.stats.crashes == 1 and plan.stats.restarts == 1
                plan.uninstall()
                channel.reset()
                channel.sim = Simulator()  # repeat harness: fresh clock
            delivered = []
            channel.connect(delivered.append)
            for i in range(30):  # sends land inside the old ramp times
                channel.sim.schedule_at(float(i), channel.send, i)
            channel.sim.run()
            return delivered, channel.stats.lost

        assert replay(fault_first=True) == replay(fault_first=False)
