"""Flow multiplexing: envelopes, demux routing, per-flow accounting.

Covers the link layer of the multi-flow host: the
:class:`~repro.core.messages.FlowEnvelope` wire format (object transit
on raw channels, ``0x03`` frames on framed links),
:class:`~repro.channel.mux.FlowMux` delivery routing, per-flow channel
statistics, and the error paths that keep cross-flow misdelivery
structurally impossible.
"""

import random

import pytest

from repro.channel.channel import Channel
from repro.channel.impairments import BernoulliLoss
from repro.channel.mux import FlowMux
from repro.core.messages import BlockAck, DataMessage, FlowEnvelope
from repro.wire.codec import (
    CorruptFrame,
    FrameError,
    MAX_FLOW_ID,
    decode_message,
    encode_message,
)
from repro.wire.framed import FramedChannel


def _channel(sim, **kwargs):
    return Channel(sim, rng=random.Random(7), **kwargs)


class TestEnvelopeCodec:
    def test_round_trip_data(self):
        envelope = FlowEnvelope(
            flow=5, fseq=9, message=DataMessage(seq=3, payload=b"hello")
        )
        decoded = decode_message(encode_message(envelope))
        assert decoded == envelope

    def test_round_trip_ack(self):
        envelope = FlowEnvelope(flow=0, fseq=0, message=BlockAck(lo=2, hi=8))
        assert decode_message(encode_message(envelope)) == envelope

    def test_fseq_wraps_mod_2_16(self):
        envelope = FlowEnvelope(
            flow=1, fseq=0x1_0005, message=BlockAck(lo=0, hi=0)
        )
        decoded = decode_message(encode_message(envelope))
        assert decoded.fseq == 0x0005  # diagnostic counter wraps on the wire

    def test_flow_id_outside_domain_rejected(self):
        envelope = FlowEnvelope(
            flow=MAX_FLOW_ID + 1, fseq=0, message=BlockAck(lo=0, hi=0)
        )
        with pytest.raises(FrameError):
            encode_message(envelope)

    def test_oversized_inner_frame_rejected(self):
        envelope = FlowEnvelope(
            flow=0, fseq=0,
            message=DataMessage(seq=0, payload=b"x" * 0xFFF8),
        )
        with pytest.raises(FrameError):
            encode_message(envelope)

    def test_bit_flip_discards_envelope_whole(self):
        frame = bytearray(
            encode_message(
                FlowEnvelope(
                    flow=2, fseq=1, message=DataMessage(seq=0, payload=b"p")
                )
            )
        )
        frame[6] ^= 0x40  # damage the *inner* frame's bytes
        with pytest.raises(CorruptFrame):
            decode_message(bytes(frame))  # outer CRC rejects the whole thing


class TestDemux:
    def test_routes_to_the_right_flow(self, sim):
        mux = FlowMux(_channel(sim))
        got = {0: [], 1: []}
        mux.port(0).connect(got[0].append)
        mux.port(1).connect(got[1].append)
        mux.port(0).send(DataMessage(seq=0, payload="a"))
        mux.port(1).send(DataMessage(seq=0, payload="b"))
        mux.port(0).send(DataMessage(seq=1, payload="c"))
        sim.run()
        assert [m.payload for m in got[0]] == ["a", "c"]
        assert [m.payload for m in got[1]] == ["b"]

    def test_ports_listing_in_flow_order(self, sim):
        mux = FlowMux(_channel(sim))
        mux.port(3), mux.port(1), mux.port(2)
        assert [port.flow for port in mux.ports()] == [1, 2, 3]
        assert mux.port(1) is mux.ports()[0]  # created once, reused

    def test_untagged_message_raises(self, sim):
        mux = FlowMux(_channel(sim))
        mux.port(0).connect(lambda message: None)
        mux.link.send(DataMessage(seq=0, payload="raw"))
        with pytest.raises(TypeError):
            sim.run()

    def test_unconnected_flow_raises(self, sim):
        mux = FlowMux(_channel(sim))
        mux.port(0).send(DataMessage(seq=0, payload="x"))  # port 0 never connects
        with pytest.raises(RuntimeError):
            sim.run()

    def test_observers_see_unwrapped_messages(self, sim):
        mux = FlowMux(_channel(sim))
        port = mux.port(4)
        port.connect(lambda message: None)
        seen = []
        port.add_observer(lambda kind, message: seen.append((kind, message)))
        message = DataMessage(seq=2, payload="payload")
        port.send(message)
        sim.run()
        assert seen == [("send", message), ("deliver", message)]


class TestPerFlowStats:
    def test_loss_charged_to_the_losing_flow(self, sim):
        # flow 1's messages all die; flow 0 observes a perfect channel
        mux = FlowMux(_channel(sim, loss=BernoulliLoss(0.0)))
        lossy = FlowMux(_channel(sim, loss=BernoulliLoss(1.0)))
        clean_port = mux.port(0)
        dead_port = lossy.port(0)
        clean_port.connect(lambda message: None)
        dead_port.connect(lambda message: None)
        clean_port.send(DataMessage(seq=0, payload="ok"))
        dead_port.send(DataMessage(seq=0, payload="gone"))
        sim.run()
        assert clean_port.stats.delivered == 1 and clean_port.stats.lost == 0
        assert dead_port.stats.delivered == 0 and dead_port.stats.lost == 1

    def test_cross_flow_overtaking_not_counted_as_reorder(self, sim):
        # flow 0 sends before flow 1, flow 1 delivers first: neither flow
        # saw *its own* messages reordered, so neither is charged
        channel = Channel(
            sim,
            delay=_VariableDelay([3.0, 1.0]),
            rng=random.Random(1),
        )
        mux = FlowMux(channel)
        a, b = mux.port(0), mux.port(1)
        a.connect(lambda message: None)
        b.connect(lambda message: None)
        a.send(DataMessage(seq=0, payload="slow"))
        b.send(DataMessage(seq=0, payload="fast"))
        sim.run()
        assert channel.stats.reordered == 1  # the link did reorder...
        assert a.stats.reordered == 0  # ...but no flow saw it
        assert b.stats.reordered == 0

    def test_intra_flow_overtaking_is_counted(self, sim):
        channel = Channel(
            sim,
            delay=_VariableDelay([3.0, 1.0]),
            rng=random.Random(1),
        )
        port = FlowMux(channel).port(0)
        port.connect(lambda message: None)
        port.send(DataMessage(seq=0, payload="slow"))
        port.send(DataMessage(seq=1, payload="fast"))
        sim.run()
        assert port.stats.reordered == 1


class _VariableDelay:
    """Scripted per-send delays (deterministic reordering)."""

    def __init__(self, delays):
        self._delays = list(delays)

    def sample(self, rng):
        return self._delays.pop(0) if self._delays else 1.0

    @property
    def max_delay(self):
        return None

    @property
    def mean_delay(self):
        return 1.0


class TestFramedTransit:
    def test_envelopes_cross_a_framed_link(self, sim):
        framed = FramedChannel(_channel(sim), 0.0)
        mux = FlowMux(framed)
        got = {0: [], 1: []}
        mux.port(0).connect(got[0].append)
        mux.port(1).connect(got[1].append)
        mux.port(0).send(DataMessage(seq=0, payload=b"zero"))
        mux.port(1).send(BlockAck(lo=0, hi=4))
        sim.run()
        assert got[0] == [DataMessage(seq=0, payload=b"zero", attempt=0)]
        assert got[1] == [BlockAck(lo=0, hi=4)]
        assert framed.bytes_sent > 0

    def test_corruption_becomes_clean_per_flow_loss(self, sim):
        # BER=1 flips every bit: every envelope dies at the CRC check,
        # nothing is ever misrouted, and the mux sees no deliveries
        framed = FramedChannel(_channel(sim), 1.0)
        mux = FlowMux(framed)
        port = mux.port(0)
        got = []
        port.connect(got.append)
        port.send(DataMessage(seq=0, payload=b"doomed"))
        sim.run()
        assert got == []
        assert framed.discarded == 1
