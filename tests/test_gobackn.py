"""Tests for the go-back-N baseline."""

import pytest

from repro.channel.delay import ConstantDelay, UniformDelay
from repro.channel.impairments import BernoulliLoss, ScriptedLoss
from repro.protocols.gobackn import GoBackNReceiver, GoBackNSender
from repro.sim.runner import LinkSpec, run_transfer
from repro.trace.events import EventKind
from repro.workloads.sources import GreedySource


def run_gbn(total=200, w=8, forward=None, reverse=None, seed=0, trace=False):
    return run_transfer(
        GoBackNSender(w), GoBackNReceiver(w), GreedySource(total),
        forward=forward, reverse=reverse, seed=seed, trace=trace,
        max_time=500_000.0,
    )


class TestLossless:
    def test_completes_in_order(self):
        result = run_gbn()
        assert result.completed and result.in_order

    def test_matches_pipelining_bound(self):
        result = run_gbn(total=400, w=8)
        assert abs(result.throughput - 4.0) < 0.2

    def test_no_retransmissions(self):
        result = run_gbn()
        assert result.sender_stats["retransmissions"] == 0


class TestLoss:
    def test_recovers_from_loss(self):
        link = lambda p: LinkSpec(delay=ConstantDelay(1.0), loss=BernoulliLoss(p))
        result = run_gbn(forward=link(0.05), reverse=link(0.05), seed=3)
        assert result.completed and result.in_order

    def test_whole_window_retransmitted_on_timeout(self):
        # lose exactly one data message; the timeout resends every
        # outstanding message (the "go back")
        result = run_transfer(
            GoBackNSender(4), GoBackNReceiver(4), GreedySource(4),
            forward=LinkSpec(delay=ConstantDelay(1.0), loss=ScriptedLoss({0})),
            reverse=LinkSpec(delay=ConstantDelay(1.0)),
            seed=0, trace=True, max_time=1000.0,
        )
        assert result.completed
        resends = result.trace.filter(kind=EventKind.RESEND_DATA)
        assert len(resends) >= 4  # all four went back

    def test_efficiency_collapses_under_loss(self):
        link = lambda: LinkSpec(delay=ConstantDelay(1.0), loss=BernoulliLoss(0.15))
        result = run_gbn(w=16, forward=link(), reverse=link(), seed=4)
        assert result.completed
        assert result.goodput_efficiency < 0.5


class TestReorder:
    def test_correct_but_slow_under_reorder(self):
        link = lambda: LinkSpec(delay=UniformDelay(0.1, 1.9))
        result = run_gbn(total=150, forward=link(), reverse=link(), seed=5)
        assert result.completed and result.in_order
        assert result.sender_stats["retransmissions"] > 0  # spurious go-backs

    def test_out_of_order_data_discarded_not_buffered(self):
        link = lambda: LinkSpec(delay=UniformDelay(0.1, 1.9))
        result = run_gbn(total=150, forward=link(), reverse=link(), seed=5)
        assert result.receiver_stats["out_of_order"] > 0
        assert result.receiver_stats["max_buffered"] == 0


class TestAckHandling:
    def test_cumulative_ack_covers_prefix(self, sim):
        from repro.channel.channel import Channel
        from repro.core.messages import CumulativeAck

        sender = GoBackNSender(4, timeout_period=3.0)
        channel = Channel(sim)
        channel.connect(lambda m: None)
        sender.attach(sim, channel)
        for index in range(3):
            sender.submit(f"p{index}")
        sender.on_message(CumulativeAck(1))
        assert sender.na == 2

    def test_stale_ack_ignored(self, sim):
        from repro.channel.channel import Channel
        from repro.core.messages import CumulativeAck

        sender = GoBackNSender(4, timeout_period=3.0)
        channel = Channel(sim)
        channel.connect(lambda m: None)
        sender.attach(sim, channel)
        sender.submit("p0")
        sender.on_message(CumulativeAck(0))
        sender.on_message(CumulativeAck(0))
        assert sender.stats.stale_acks == 1

    def test_wrong_message_type_rejected(self, sim):
        from repro.channel.channel import Channel
        from repro.core.messages import BlockAck

        sender = GoBackNSender(4, timeout_period=3.0)
        sender.attach(sim, Channel(sim))
        with pytest.raises(TypeError):
            sender.on_message(BlockAck(0, 0))

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            GoBackNSender(0)
