"""Window-core equivalence: decision traces pinned against pre-refactor runs.

``tests/golden/decision_traces.json`` was recorded with the protocol
implementations as they stood *before* the shared
:mod:`repro.protocols.window_core` extraction.  Every refactored protocol
must reproduce those recordings byte-for-byte across the three pinned
regimes (E1 lossless pipelining, E3 Bernoulli loss, E5 scripted ack
loss).  Regenerate deliberately with ``python tests/golden/generate.py``
only when a behaviour change is intended and understood.
"""

import json

import pytest

from repro.trace.events import EventKind
from repro.trace.recorder import decision_diff

from .golden.generate import GOLDEN_PATH, golden_cases, record_case

RECORDINGS = json.loads(GOLDEN_PATH.read_text())


def _rehydrate(recorded):
    """JSON rows back into decision-key tuples."""
    return [
        (time, actor, EventKind(kind), seq, seq_hi)
        for time, actor, kind, seq, seq_hi in recorded
    ]


@pytest.mark.parametrize(
    "case_id,protocol,kwargs",
    golden_cases(),
    ids=[case_id for case_id, _, _ in golden_cases()],
)
def test_decision_trace_matches_golden(case_id, protocol, kwargs):
    assert case_id in RECORDINGS, (
        f"no golden recording for {case_id}; run tests/golden/generate.py"
    )
    golden = _rehydrate(RECORDINGS[case_id])
    current = _rehydrate(record_case(protocol, **kwargs))
    differences = decision_diff(golden, current)
    assert not differences, (
        f"{case_id}: decision trace diverged from the pre-refactor "
        f"recording:\n" + "\n".join(differences)
    )


@pytest.mark.parametrize(
    "case_id,protocol,kwargs",
    golden_cases(),
    ids=[f"fast-{case_id}" for case_id, _, _ in golden_cases()],
)
def test_decision_trace_matches_golden_fast_engine(case_id, protocol, kwargs):
    """The calendar-queue engine must reproduce every recording too.

    The fast engine reorders nothing observable: same-timestamp events
    fire in schedule order (batched), and the block-sampled channel
    randomness is bit-identical to ``random.Random``.  Any divergence
    here means the raw-speed path changed protocol behaviour.
    """
    golden = _rehydrate(RECORDINGS[case_id])
    current = _rehydrate(record_case(protocol, engine="fast", **kwargs))
    differences = decision_diff(golden, current)
    assert not differences, (
        f"{case_id}: fast-engine decision trace diverged from the "
        f"default-engine recording:\n" + "\n".join(differences)
    )


def test_every_recording_is_exercised():
    exercised = {case_id for case_id, _, _ in golden_cases()}
    assert exercised == set(RECORDINGS), (
        "golden file and case list out of sync; run tests/golden/generate.py"
    )
