"""Multi-flow session host: N=1 parity, shared-link sessions, sweep plumbing.

The acceptance contract of :mod:`repro.sim.host`:

* ``run_flows`` with one flow reproduces :func:`~repro.sim.runner
  .run_transfer` exactly — same ``TransferResult`` fields, same decision
  trace — on the E3 quick configurations for every refactored protocol;
* with N >= 2 flows over one shared lossy link pair, every flow delivers
  exactly-once in-order and the per-flow invariant monitors/probes
  record zero violations;
* multi-flow results flow through the sweep runner (``RunConfig.flows``)
  with per-flow rows and the Jain fairness index surviving the
  serialize/deserialize round trip.
"""

import json

import pytest

from repro.analysis.stats import jain_fairness
from repro.experiments.common import lossy_link
from repro.perf.sweep import (
    RunConfig,
    deserialize_result,
    execute_config,
    serialize_result,
)
from repro.protocols.registry import make_pair
from repro.sim.host import (
    FlowSpec,
    run_flows,
    session_to_transfer,
    uniform_flows,
)
from repro.sim.runner import LinkSpec, run_transfer
from repro.workloads.sources import GreedySource

PROTOCOLS = ("blockack", "gobackn", "selective-repeat")
#: the E3 quick grid: window 8, FIFO-jitterless links, these loss rates
E3_WINDOW = 8
E3_LOSSES = (0.0, 0.05, 0.20)


def _shared_link(loss=0.1):
    return lossy_link(loss)


class TestSingleFlowParity:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("loss", E3_LOSSES)
    def test_run_flows_n1_equals_run_transfer(self, protocol, loss):
        """E3 quick cells: identical results and decision traces."""
        sender, receiver = make_pair(protocol, window=E3_WINDOW)
        reference = run_transfer(
            sender, receiver, GreedySource(300),
            forward=lossy_link(loss, spread=0.0),
            reverse=lossy_link(loss, spread=0.0),
            seed=11, trace=True,
        )
        sender, receiver = make_pair(protocol, window=E3_WINDOW)
        session = run_flows(
            [FlowSpec(sender, receiver, GreedySource(300), label=protocol)],
            forward=lossy_link(loss, spread=0.0),
            reverse=lossy_link(loss, spread=0.0),
            seed=11, trace=True,
        )
        result = session.transfer
        assert result is not None  # N=1 went through run_transfer itself
        for field in (
            "completed", "duration", "delivered", "submitted", "in_order",
            "sender_stats", "receiver_stats", "forward_stats",
            "reverse_stats", "timeout_period", "latencies",
        ):
            assert getattr(result, field) == getattr(reference, field), field
        assert (
            result.trace.decision_trace() == reference.trace.decision_trace()
        )
        assert session.fairness == 1.0
        assert len(session.flows) == 1
        assert session.delivered == reference.delivered

    def test_empty_flow_list_rejected(self):
        with pytest.raises(ValueError):
            run_flows([])

    def test_uniform_flows_validates_count(self):
        with pytest.raises(ValueError):
            uniform_flows("blockack", 0, 4, 10)


class TestSharedLinkSessions:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_every_flow_exactly_once_in_order(self, protocol):
        session = run_flows(
            uniform_flows(protocol, 4, 4, 40),
            forward=_shared_link(), reverse=_shared_link(),
            seed=23, monitor_invariants=True, collect_payloads=True,
        )
        assert session.completed and session.in_order
        assert len(session.flows) == 4
        for flow in session.flows:
            assert flow.completed and flow.in_order
            assert flow.delivered == flow.submitted == 40
            assert flow.delivered_payloads == [("msg", i) for i in range(40)]
            assert flow.violations == 0  # per-flow invariant 6 ∧ 7 ∧ 8
        assert session.violations == 0
        assert session.delivered == 160
        assert session.fairness == 1.0

    def test_shared_link_carries_all_flows(self):
        session = run_flows(
            uniform_flows("blockack", 3, 4, 25),
            forward=_shared_link(), reverse=_shared_link(), seed=5,
        )
        # the shared channel's counters are the sum of the per-flow views
        assert session.forward_stats["sent"] == sum(
            flow.forward_stats["sent"] for flow in session.flows
        )
        assert session.reverse_stats["delivered"] == sum(
            flow.reverse_stats["delivered"] for flow in session.flows
        )

    def test_per_flow_actor_names_in_trace(self):
        session = run_flows(
            uniform_flows("blockack", 2, 4, 10),
            forward=LinkSpec(), reverse=LinkSpec(), seed=1, trace=True,
        )
        actors = {event.actor for event in session.trace.events}
        assert {"sender.f0", "receiver.f0", "sender.f1", "receiver.f1"} <= actors

    def test_horizon_cutoff_keeps_prefix_order(self):
        """Fixed-horizon fairness runs: incomplete but prefix-ordered."""
        session = run_flows(
            uniform_flows("blockack", 2, 4, 100_000),
            forward=_shared_link(), reverse=_shared_link(),
            seed=3, max_time=40.0,
        )
        assert not session.completed
        for flow in session.flows:
            assert not flow.completed  # the source never drained...
            assert flow.ordered_prefix  # ...but what arrived is exact
            assert 0 < flow.delivered < 100_000

    def test_framed_shared_link(self):
        """Envelopes as 0x03 frames: corruption is clean per-flow loss."""

        class _ByteSource(GreedySource):
            def _make_payload(self):
                return f"chunk-{len(self.submitted):05d}".encode()

        flows = [
            FlowSpec(*make_pair("blockack", window=4), _ByteSource(30))
            for _ in range(2)
        ]
        session = run_flows(
            flows,
            forward=LinkSpec(max_lifetime=8.0, bit_error_rate=1e-5),
            reverse=LinkSpec(max_lifetime=8.0, bit_error_rate=1e-5),
            seed=9, monitor_invariants=True,
        )
        assert session.completed and session.in_order
        assert session.violations == 0
        assert "discarded" in session.forward_stats  # framed counters kept

    def test_multi_flow_obs_with_probes(self, tmp_path):
        session = run_flows(
            uniform_flows("blockack", 2, 4, 30),
            forward=_shared_link(), reverse=_shared_link(), seed=13,
            obs=True, obs_run_id="host-test",
            obs_sample_invariants_every=8,
        )
        assert session.completed and session.in_order
        assert session.violations == 0  # probes attached per flow
        for flow in session.flows:
            assert flow.monitor is not None
            assert flow.monitor.checks_run > 0
            assert flow.latencies  # span-derived per-flow latencies
        names = set(session.obs.registry.snapshot())
        assert {"flow_stat", "session_fairness", "channel_events_total"} <= names
        path = session.obs.export(path=tmp_path / "host-test.jsonl")
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records[0]["type"] == "meta"


class TestSessionToTransfer:
    def test_aggregates_and_per_flow_rows(self):
        session = run_flows(
            uniform_flows("blockack", 3, 4, 20),
            forward=_shared_link(), reverse=_shared_link(),
            seed=2, monitor_invariants=True,
        )
        flat = session_to_transfer(session)
        assert flat.delivered == session.delivered == 60
        assert flat.fairness == session.fairness
        assert flat.ordered_prefix
        assert len(flat.per_flow) == 3
        assert flat.sender_stats["data_sent"] == sum(
            flow.sender_stats["data_sent"] for flow in session.flows
        )
        assert flat.monitor is not None and flat.monitor.ok
        for row in flat.per_flow:
            assert row["violations"] == 0
            assert row["in_order"] and row["ordered_prefix"]

    def test_n1_keeps_the_exact_transfer_result(self):
        sender, receiver = make_pair("blockack", window=4)
        session = run_flows(
            [FlowSpec(sender, receiver, GreedySource(15))],
            forward=LinkSpec(), reverse=LinkSpec(), seed=1,
        )
        flat = session_to_transfer(session)
        assert flat is session.transfer
        assert len(flat.per_flow) == 1 and flat.fairness == 1.0


class TestSweepPlumbing:
    def test_flows_config_runs_through_execute(self):
        config = RunConfig(
            protocol="selective-repeat", window=4, total=20,
            forward=_shared_link(), reverse=_shared_link(),
            seed=11, flows=3, monitor_invariants=True,
        )
        result = execute_config(config)
        assert result.completed and result.in_order
        assert result.delivered == 60  # total is per flow
        assert len(result.per_flow) == 3
        assert result.fairness == pytest.approx(
            jain_fairness([row["delivered"] for row in result.per_flow])
        )

    def test_per_flow_rows_survive_serialization(self):
        config = RunConfig(
            protocol="blockack", window=4, total=15,
            forward=_shared_link(), reverse=_shared_link(),
            seed=7, flows=2,
        )
        result = execute_config(config)
        payload = json.loads(json.dumps(serialize_result(result)))
        back = deserialize_result(payload)
        assert back.per_flow == result.per_flow
        assert back.fairness == result.fairness
        assert back.ordered_prefix == result.ordered_prefix

    def test_legacy_payload_still_deserializes(self):
        config = RunConfig(
            protocol="blockack", window=4, total=15,
            forward=LinkSpec(), reverse=LinkSpec(), seed=7,
        )
        payload = serialize_result(execute_config(config))
        for key in ("per_flow", "fairness", "ordered_prefix"):
            payload.pop(key, None)  # pre-multi-flow cache entry
        back = deserialize_result(payload)
        assert back.per_flow == [] and back.fairness is None
        assert back.ordered_prefix == back.in_order

    def test_flows_changes_cache_key_but_n1_format_is_stable(self):
        base = dict(
            protocol="blockack", window=4, total=15,
            forward=LinkSpec(), reverse=LinkSpec(), seed=7,
        )
        single = RunConfig(**base)
        multi = RunConfig(**base, flows=4)
        assert single.cache_key() != multi.cache_key()
        assert "flows" not in single.description()  # old keys unchanged
        assert "flows=4" in multi.description()
        assert "_f4_" in multi.run_id()

    def test_fault_plans_rejected_for_multi_flow(self):
        from repro.robustness.faults import CrashRestart, FaultPlan

        config = RunConfig(
            protocol="blockack", window=4, total=15,
            forward=_shared_link(), reverse=_shared_link(),
            seed=7, flows=2,
            fault_plan=FaultPlan(
                crashes=(CrashRestart(at=5.0, outage=2.0, endpoint="sender"),)
            ),
        )
        with pytest.raises(ValueError):
            execute_config(config)


class TestFairnessIndex:
    def test_equal_allocation_is_one(self):
        assert jain_fairness([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_monopoly_is_one_over_n(self):
        assert jain_fairness([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_all_zero_defined_as_fair(self):
        assert jain_fairness([0, 0]) == 1.0

    def test_empty_and_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_fairness([])
        with pytest.raises(ValueError):
            jain_fairness([1, -1])
