"""Cross-module integration tests: whole transfers under adversity.

These tests exercise the full stack — engine, channels, endpoints,
sources, runner — in configurations chosen to hit the protocol's corner
cases: tiny windows, huge windows, brutal loss, extreme jitter, delayed
acks, bursty arrivals, and the paper's bounded-number mode throughout.
"""

import pytest

from repro.channel.delay import ConstantDelay, ExponentialDelay, UniformDelay
from repro.channel.impairments import BernoulliLoss, GilbertElliottLoss
from repro.core.numbering import ModularNumbering
from repro.protocols.ack_policy import CountingAckPolicy, DelayedAckPolicy
from repro.protocols.blockack import BlockAckReceiver, BlockAckSender
from repro.protocols.registry import make_pair, protocol_names
from repro.sim.runner import LinkSpec, run_transfer
from repro.workloads.sources import BurstySource, GreedySource, PoissonSource


def assert_correct(result, label=""):
    assert result.completed, f"{label}: {result.summary()}"
    assert result.in_order, f"{label}: {result.summary()}"


class TestAllProtocolsUnderAdversity:
    @pytest.mark.parametrize("name", protocol_names())
    def test_loss_and_reorder(self, name):
        link = lambda: LinkSpec(
            delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(0.08)
        )
        sender, receiver = make_pair(name, window=6)
        result = run_transfer(
            sender, receiver, GreedySource(120),
            forward=link(), reverse=link(), seed=21, max_time=500_000.0,
        )
        assert_correct(result, name)

    @pytest.mark.parametrize("name", protocol_names())
    def test_bursty_loss(self, name):
        link = lambda: LinkSpec(
            delay=ConstantDelay(1.0),
            loss=GilbertElliottLoss(0.02, 0.3, p_good=0.0, p_bad=0.8),
        )
        sender, receiver = make_pair(name, window=6)
        result = run_transfer(
            sender, receiver, GreedySource(100),
            forward=link(), reverse=link(), seed=22, max_time=500_000.0,
        )
        assert_correct(result, name)


class TestBlockAckCornerConfigurations:
    @pytest.mark.parametrize("window", [1, 2, 3, 17, 64])
    def test_window_sizes_bounded_wire(self, window):
        numbering = ModularNumbering(window)
        sender = BlockAckSender(
            window, numbering=numbering, timeout_mode="per_message_safe"
        )
        receiver = BlockAckReceiver(window, numbering=numbering)
        link = lambda: LinkSpec(
            delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(0.05)
        )
        result = run_transfer(
            sender, receiver, GreedySource(max(60, 4 * window)),
            forward=link(), reverse=link(), seed=23, max_time=500_000.0,
        )
        assert_correct(result, f"w={window}")

    @pytest.mark.parametrize("seed", range(8))
    def test_many_seeds_heavy_adversity(self, seed):
        """Soak: 8 independent heavy loss+reorder runs over mod-2w wire."""
        numbering = ModularNumbering(5)
        sender = BlockAckSender(
            5, numbering=numbering, timeout_mode="per_message_safe"
        )
        receiver = BlockAckReceiver(5, numbering=numbering)
        link = lambda: LinkSpec(
            delay=UniformDelay(0.2, 2.5), loss=BernoulliLoss(0.15)
        )
        result = run_transfer(
            sender, receiver, GreedySource(100),
            forward=link(), reverse=link(), seed=seed, max_time=500_000.0,
        )
        assert_correct(result, f"seed={seed}")

    def test_long_tail_delays_with_aging(self):
        sender = BlockAckSender(8, timeout_mode="simple")
        receiver = BlockAckReceiver(8)
        link = lambda: LinkSpec(
            delay=ExponentialDelay(0.5, offset=0.5),
            loss=BernoulliLoss(0.03),
            max_lifetime=10.0,
        )
        result = run_transfer(
            sender, receiver, GreedySource(200),
            forward=link(), reverse=link(), seed=24, max_time=500_000.0,
        )
        assert_correct(result)

    def test_delayed_acks_with_loss(self):
        sender = BlockAckSender(8, timeout_mode="per_message_safe")
        receiver = BlockAckReceiver(8, ack_policy=DelayedAckPolicy(0.5))
        link = lambda: LinkSpec(
            delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(0.08)
        )
        result = run_transfer(
            sender, receiver, GreedySource(150),
            forward=link(), reverse=link(), seed=25, max_time=500_000.0,
        )
        assert_correct(result)
        assert result.acks_per_message < 1.0

    def test_counting_acks_with_bursty_source(self):
        sender = BlockAckSender(16, timeout_mode="per_message_safe")
        receiver = BlockAckReceiver(16, ack_policy=CountingAckPolicy(4, 1.0))
        result = run_transfer(
            sender, receiver, BurstySource(200, burst_size=8, gap=3.0),
            seed=26, max_time=500_000.0,
        )
        assert_correct(result)
        assert result.acks_per_message <= 0.5

    def test_poisson_arrivals_with_loss(self):
        import random

        sender = BlockAckSender(8)
        receiver = BlockAckReceiver(8)
        result = run_transfer(
            sender, receiver,
            PoissonSource(150, rate=1.0, rng=random.Random(3)),
            forward=LinkSpec(delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(0.05)),
            reverse=LinkSpec(delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(0.05)),
            seed=27, max_time=500_000.0,
        )
        assert_correct(result)


class TestObservableInvariants:
    def test_sender_window_invariant_after_transfer(self):
        sender = BlockAckSender(6)
        receiver = BlockAckReceiver(6)
        link = lambda: LinkSpec(
            delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(0.1)
        )
        result = run_transfer(
            sender, receiver, GreedySource(100),
            forward=link(), reverse=link(), seed=30, max_time=500_000.0,
        )
        assert_correct(result)
        sender.window.check_invariant()
        receiver.window.check_invariant()

    def test_conservation_of_messages(self):
        """Channel arithmetic: sent = delivered + lost + aged, both ways."""
        sender = BlockAckSender(6)
        receiver = BlockAckReceiver(6)
        link = lambda: LinkSpec(
            delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(0.1)
        )
        result = run_transfer(
            sender, receiver, GreedySource(100),
            forward=link(), reverse=link(), seed=31, max_time=500_000.0,
        )
        for stats in (result.forward_stats, result.reverse_stats):
            assert stats["sent"] == (
                stats["delivered"] + stats["lost"] + stats["aged_out"]
            )

    def test_sender_receiver_counters_reconcile(self):
        sender = BlockAckSender(6)
        receiver = BlockAckReceiver(6)
        link = lambda: LinkSpec(
            delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(0.1)
        )
        result = run_transfer(
            sender, receiver, GreedySource(100),
            forward=link(), reverse=link(), seed=32, max_time=500_000.0,
        )
        assert result.sender_stats["data_sent"] == result.forward_stats["sent"]
        assert (
            result.receiver_stats["data_received"]
            == result.forward_stats["delivered"]
        )
        assert result.receiver_stats["delivered"] == 100
        assert result.sender_stats["acked"] == 100

    def test_redundant_receptions_never_happen_with_safe_timers(self):
        """Assertion 8's visible consequence: a receiver never sees an
        in-window message twice when timers respect the safe bound."""
        for seed in range(5):
            sender = BlockAckSender(6, timeout_mode="per_message_safe")
            receiver = BlockAckReceiver(6)
            link = lambda: LinkSpec(
                delay=UniformDelay(0.3, 1.7), loss=BernoulliLoss(0.12)
            )
            result = run_transfer(
                sender, receiver, GreedySource(120),
                forward=link(), reverse=link(), seed=seed,
                max_time=500_000.0,
            )
            assert_correct(result, f"seed={seed}")
            assert result.receiver_stats["redundant"] == 0
