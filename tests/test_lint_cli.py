"""CLI surface and self-check gates for ``blockack lint``.

The final test here is the one CI actually gates on: the shipped tree
itself lints clean (with only the deliberate, audited inline
suppressions).  The mypy gate mirrors it when mypy is installed (it is
in CI; the test skips locally when the tool is absent).
"""

from __future__ import annotations

import json
import pathlib
import shutil
import subprocess
import sys

import pytest

from repro.cli.main import build_parser, main
from repro.lint import lint_paths
from repro.lint.cli import main as lint_main

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


class TestParser:
    def test_lint_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert args.paths == ["src"]
        assert args.format == "text"
        assert args.rules is None

    def test_lint_flags(self):
        args = build_parser().parse_args(
            ["lint", "src", "tests", "--format", "json", "--rules", "D101"]
        )
        assert args.paths == ["src", "tests"]
        assert args.format == "json"
        assert args.rules == "D101"


class TestLintCommand:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("def f(sim):\n    return sim.now\n")
        assert main(["lint", str(target)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one_with_location(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("import time\n\ndef f():\n    return time.time()\n")
        assert main(["lint", str(target)]) == 1
        out = capsys.readouterr().out
        assert "D101" in out
        assert "dirty.py:4" in out

    def test_json_format_is_machine_readable(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("import random\nx = random.random()\n")
        assert main(["lint", str(target), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_checked"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "D102"
        assert finding["line"] == 2
        assert finding["severity"] == "error"

    def test_output_file_written_for_ci_artifact(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("import time\nt = time.monotonic()\n")
        report_path = tmp_path / "artifacts" / "lint.json"
        code = main(["lint", str(target), "--output", str(report_path)])
        assert code == 1
        payload = json.loads(report_path.read_text())
        assert payload["findings"]

    def test_rule_subset_runs_only_named_rules(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text(
            "import time\nimport random\n"
            "t = time.time()\nx = random.random()\n"
        )
        assert main(["lint", str(target), "--rules", "D102"]) == 1
        out = capsys.readouterr().out
        assert "D102" in out and "D101" not in out

    def test_unknown_rule_is_usage_error(self, tmp_path, capsys):
        target = tmp_path / "any.py"
        target.write_text("x = 1\n")
        assert main(["lint", str(target), "--rules", "Z999"]) == 2

    def test_list_rules_prints_catalogue(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("D101", "D103", "P201", "S301", "S303"):
            assert rule_id in out

    def test_syntax_error_reported_not_crash(self, tmp_path, capsys):
        target = tmp_path / "broken.py"
        target.write_text("def f(:\n")
        assert main(["lint", str(target)]) == 1
        assert "syntax error" in capsys.readouterr().out

    def test_module_entry_point_matches_blockack(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("import time\nt = time.time()\n")
        assert lint_main([str(target)]) == 1


class TestSelfCheck:
    """The acceptance gate: the shipped tree is clean under its own rules."""

    def test_src_tree_lints_clean(self):
        report = lint_paths([str(SRC)])
        assert not report.parse_errors, report.parse_errors
        assert report.findings == [], "\n".join(
            f.render() for f in report.findings
        )
        assert report.files_checked > 100

    def test_blockack_lint_src_exit_code(self, capsys):
        assert main(["lint", str(SRC)]) == 0

    def test_deliberate_suppressions_are_named_not_blanket(self):
        # audit trail: every inline waiver in src names its rule
        blanket = []
        for path in SRC.rglob("*.py"):
            if path.name == "suppress.py":
                continue  # documents the bare form in its docstring
            for lineno, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1
            ):
                if "lint: ignore" in line and "lint: ignore[" not in line:
                    blanket.append(f"{path}:{lineno}")
        assert not blanket, blanket


@pytest.mark.slow
class TestMypyGate:
    """Strict-leaning typing gate; runs wherever mypy is installed (CI)."""

    def test_mypy_src_repro_clean(self):
        if shutil.which("mypy") is None:
            pytest.skip("mypy not installed in this environment")
        proc = subprocess.run(
            [sys.executable, "-m", "mypy", "src/repro"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
