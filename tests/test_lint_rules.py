"""Per-rule fixtures for the determinism & contract analyzer.

Every shipped rule gets three fixtures, per the DESIGN §15 policy:

* a **true positive** — a minimal snippet the rule must fire on,
* a **suppressed** variant — the same snippet silenced with
  ``# lint: ignore[RULE]``,
* a **false-positive guard** — the closest *correct* idiom, which the
  rule must stay silent on.

Fixtures are linted in memory via :func:`repro.lint.lint_sources`, so
the tests are hermetic and fast.  The S-series cross-artifact rules get
miniature fake modules impersonating the real artifact paths.
"""

from __future__ import annotations

import textwrap

from repro.lint import lint_sources
from repro.lint.registry import all_rules, get_rule, rule_ids


def run(source, path="pkg/mod.py", module="repro.fake.mod", only=(), extra=None):
    sources = {path: textwrap.dedent(source)}
    modules = {path: module}
    if extra:
        for extra_path, (extra_src, extra_mod) in extra.items():
            sources[extra_path] = textwrap.dedent(extra_src)
            modules[extra_path] = extra_mod
    report = lint_sources(sources, only=only, modules=modules)
    assert not report.parse_errors, report.parse_errors
    return report.findings


def rules_fired(findings):
    return {f.rule for f in findings}


# ---------------------------------------------------------------------------
# registry basics
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_all_three_families_ship(self):
        ids = rule_ids()
        assert {"D101", "D102", "D103", "D104", "D105"} <= set(ids)
        assert {"P201", "P202"} <= set(ids)
        assert {"S301", "S302", "S303"} <= set(ids)

    def test_every_rule_has_summary_and_rationale(self):
        for rule in all_rules():
            assert rule.summary, rule.id
            assert rule.rationale, rule.id
            assert rule.scope in ("file", "project")

    def test_get_rule_unknown_raises(self):
        try:
            get_rule("Z999")
        except KeyError as err:
            assert "Z999" in str(err)
        else:  # pragma: no cover - failure path
            raise AssertionError("expected KeyError")


# ---------------------------------------------------------------------------
# D101: wall-clock
# ---------------------------------------------------------------------------


class TestD101WallClock:
    def test_fires_on_time_time(self):
        findings = run(
            """
            import time

            def step(sim):
                return time.time()
            """
        )
        assert "D101" in rules_fired(findings)

    def test_fires_on_datetime_now_and_from_import(self):
        findings = run(
            """
            from time import perf_counter
            import datetime

            def stamp():
                return datetime.datetime.now()
            """
        )
        d101 = [f for f in findings if f.rule == "D101"]
        assert len(d101) == 2  # the import and the call

    def test_suppressed(self):
        findings = run(
            """
            import time

            def measure():
                return time.perf_counter()  # lint: ignore[D101]
            """
        )
        assert "D101" not in rules_fired(findings)

    def test_allowed_in_transport_and_bench_modules(self):
        source = """
            import time

            def origin():
                return time.monotonic()
            """
        assert "D101" not in rules_fired(
            run(source, module="repro.transport.clock")
        )
        assert "D101" not in rules_fired(
            run(source, module="repro.perf.bench")
        )

    def test_false_positive_guard_virtual_clock(self):
        findings = run(
            """
            def fire(sim):
                now = sim.now  # virtual clock: the only legal time source
                sim.schedule(0.5, lambda: None)
                return now
            """
        )
        assert "D101" not in rules_fired(findings)


# ---------------------------------------------------------------------------
# D102: module-level randomness
# ---------------------------------------------------------------------------


class TestD102GlobalRandom:
    def test_fires_on_global_draw(self):
        findings = run(
            """
            import random

            def jitter():
                return random.uniform(0.0, 1.0)
            """
        )
        assert "D102" in rules_fired(findings)

    def test_fires_on_from_import_and_seed(self):
        findings = run(
            """
            from random import shuffle
            import random

            def reset():
                random.seed(0)
            """
        )
        assert len([f for f in findings if f.rule == "D102"]) == 2

    def test_suppressed(self):
        findings = run(
            """
            import random

            def jitter():
                return random.random()  # lint: ignore[D102]
            """
        )
        assert "D102" not in rules_fired(findings)

    def test_false_positive_guard_seeded_instance(self):
        findings = run(
            """
            import random

            def make_rng(seed):
                rng = random.Random(seed)
                return rng.uniform(0.0, 1.0)
            """
        )
        assert "D102" not in rules_fired(findings)

    def test_numpy_global_flagged_seeded_constructor_allowed(self):
        findings = run(
            """
            import numpy as np

            def draw(seed):
                good = np.random.RandomState(seed).random_sample(4)
                bad = np.random.random_sample(4)
                return good, bad
            """
        )
        assert len([f for f in findings if f.rule == "D102"]) == 1


# ---------------------------------------------------------------------------
# D103: set iteration
# ---------------------------------------------------------------------------


class TestD103SetIteration:
    def test_fires_on_for_over_set_literal(self):
        findings = run(
            """
            def drain(a, b, c):
                for item in {a, b, c}:
                    print(item)
            """
        )
        assert "D103" in rules_fired(findings)

    def test_fires_on_list_of_set_and_tracked_local(self):
        findings = run(
            """
            def emit(pending):
                ready = set(pending)
                return list(ready)
            """
        )
        assert "D103" in rules_fired(findings)

    def test_fires_on_comprehension_over_set_call(self):
        findings = run(
            """
            def order(xs):
                return [x + 1 for x in set(xs)]
            """
        )
        assert "D103" in rules_fired(findings)

    def test_suppressed(self):
        findings = run(
            """
            def drain(xs):
                for item in set(xs):  # lint: ignore[D103]
                    print(item)
            """
        )
        assert "D103" not in rules_fired(findings)

    def test_false_positive_guard_sorted_and_folds(self):
        findings = run(
            """
            def safe(xs, d):
                for item in sorted(set(xs)):
                    print(item)
                total = sum({x for x in xs})
                hit = 3 in set(xs)
                for key in d:  # dicts preserve insertion order
                    print(key)
                return total, hit, len(set(xs)), max(set(xs))
            """
        )
        assert "D103" not in rules_fired(findings)

    def test_false_positive_guard_reassigned_local(self):
        findings = run(
            """
            def safe(xs):
                items = set(xs)
                items = sorted(items)  # rebound to a list: no longer a set
                return list(items)
            """
        )
        assert "D103" not in rules_fired(findings)


# ---------------------------------------------------------------------------
# D104: float == on timestamps
# ---------------------------------------------------------------------------


class TestD104FloatTimeEquality:
    def test_fires_on_two_timestamps(self):
        findings = run(
            """
            def stale(timer, sim):
                return timer.deadline == sim.now
            """
        )
        assert "D104" in rules_fired(findings)

    def test_fires_on_timestamp_vs_fractional_literal(self):
        findings = run(
            """
            def at_checkpoint(sim):
                return sim.now != 2.5
            """
        )
        assert "D104" in rules_fired(findings)

    def test_suppressed(self):
        findings = run(
            """
            def stale(timer, sim):
                return timer.deadline == sim.now  # lint: ignore[D104]
            """
        )
        assert "D104" not in rules_fired(findings)

    def test_false_positive_guard_ordering_and_sentinels(self):
        findings = run(
            """
            def ok(timer, sim, count):
                before = timer.deadline <= sim.now
                fresh = sim.now == 0.0  # whole-number sentinel: exact
                n = count == 3  # ints compare exactly
                return before, fresh, n
            """
        )
        assert "D104" not in rules_fired(findings)


# ---------------------------------------------------------------------------
# D105: id()/hash() ordering
# ---------------------------------------------------------------------------


class TestD105IdHashOrder:
    def test_fires_on_id_sort_key(self):
        findings = run(
            """
            def order(events):
                return sorted(events, key=id)
            """
        )
        assert "D105" in rules_fired(findings)

    def test_fires_on_hash_in_key_lambda_and_comparison(self):
        findings = run(
            """
            def order(events, a, b):
                events.sort(key=lambda e: (hash(e), e))
                return id(a) < id(b)
            """
        )
        assert len([f for f in findings if f.rule == "D105"]) == 2

    def test_suppressed(self):
        findings = run(
            """
            def order(events):
                return sorted(events, key=id)  # lint: ignore[D105]
            """
        )
        assert "D105" not in rules_fired(findings)

    def test_false_positive_guard_stable_keys(self):
        findings = run(
            """
            def order(events, a, b):
                dedup = hash(a) == hash(b)  # equality is fine, order is not
                return sorted(events, key=lambda e: (e.time, e.seq)), dedup
            """
        )
        assert "D105" not in rules_fired(findings)


# ---------------------------------------------------------------------------
# P201: pool targets
# ---------------------------------------------------------------------------


class TestP201PoolTarget:
    def test_fires_on_lambda(self):
        findings = run(
            """
            def fan_out(pool, items):
                return pool.map(lambda x: x + 1, items)
            """
        )
        assert "P201" in rules_fired(findings)

    def test_fires_on_nested_function(self):
        findings = run(
            """
            def fan_out(executor, items):
                def work(x):
                    return x + 1
                return [executor.submit(work, x) for x in items]
            """
        )
        assert "P201" in rules_fired(findings)

    def test_fires_on_bound_method_and_lambda_name(self):
        findings = run(
            """
            run_one = lambda x: x  # noqa: E731

            class Sweep:
                def go(self, pool, items):
                    futures = [pool.submit(self.execute, x) for x in items]
                    return futures, pool.map(run_one, items)
            """
        )
        assert len([f for f in findings if f.rule == "P201"]) == 2

    def test_suppressed(self):
        findings = run(
            """
            def fan_out(pool, items):
                return pool.map(lambda x: x + 1, items)  # lint: ignore[P201]
            """
        )
        assert "P201" not in rules_fired(findings)

    def test_false_positive_guard_top_level_fn(self):
        findings = run(
            """
            import functools

            def work(x, scale):
                return x * scale

            def fan_out(pool, items):
                futures = [pool.submit(work, x) for x in items]
                mapped = pool.map(functools.partial(work, scale=2), items)
                return futures, mapped
            """
        )
        assert "P201" not in rules_fired(findings)

    def test_false_positive_guard_non_pool_receiver(self):
        findings = run(
            """
            def render(series, items):
                return series.map(lambda x: x + 1)  # not a process pool
            """
        )
        assert "P201" not in rules_fired(findings)


# ---------------------------------------------------------------------------
# P202: worker global mutation
# ---------------------------------------------------------------------------


class TestP202WorkerGlobals:
    def test_fires_on_global_statement(self):
        findings = run(
            """
            _HITS = 0

            def work(x):
                global _HITS
                _HITS += 1
                return x

            def fan_out(pool, items):
                return pool.map(work, items)
            """
        )
        assert "P202" in rules_fired(findings)

    def test_fires_on_module_dict_mutation(self):
        findings = run(
            """
            _CACHE = {}

            def work(x):
                _CACHE[x] = x + 1
                return _CACHE[x]

            def fan_out(pool, items):
                return pool.map(work, items)
            """
        )
        assert "P202" in rules_fired(findings)

    def test_suppressed(self):
        findings = run(
            """
            _CACHE = {}

            def work(x):
                _CACHE[x] = x + 1  # lint: ignore[P202]
                return _CACHE[x]

            def fan_out(pool, items):
                return pool.map(work, items)
            """
        )
        assert "P202" not in rules_fired(findings)

    def test_false_positive_guard_local_shadow_and_reads(self):
        findings = run(
            """
            _TABLE = {"a": 1}

            def work(x):
                table = {}
                table[x] = _TABLE["a"]  # reading a module global is fine
                return table

            def fan_out(pool, items):
                return pool.map(work, items)
            """
        )
        assert "P202" not in rules_fired(findings)

    def test_false_positive_guard_mutation_outside_worker(self):
        findings = run(
            """
            _CACHE = {}

            def work(x):
                return x + 1

            def fan_out(pool, items):
                results = pool.map(work, items)
                for key, value in zip(items, results):
                    _CACHE[key] = value  # parent-side memoization: fine
                return results
            """
        )
        assert "P202" not in rules_fired(findings)


# ---------------------------------------------------------------------------
# S301: engine surface parity (fake engine module fixtures)
# ---------------------------------------------------------------------------

_ENGINE_PATH = "src/repro/sim/engine.py"
_ENGINE_MOD = "repro.sim.engine"


def run_engine(engine_source):
    return run(
        engine_source, path=_ENGINE_PATH, module=_ENGINE_MOD, only=("S301",)
    )


class TestS301EngineParity:
    def test_fires_on_missing_method(self):
        findings = run_engine(
            """
            class Simulator:
                timer_observer = None

                def run(self, max_time=None):
                    pass

                def step(self):
                    pass

            class FastSimulator:
                timer_observer = None

                def run(self, max_time=None):
                    pass
            """
        )
        assert any(
            f.rule == "S301" and "step" in f.message for f in findings
        )

    def test_fires_on_signature_divergence_and_missing_seam(self):
        findings = run_engine(
            """
            class Simulator:
                timer_observer = None

                def run(self, max_time=None):
                    pass

            class FastSimulator:
                def run(self, until=None):
                    pass
            """
        )
        messages = [f.message for f in findings if f.rule == "S301"]
        assert any("signatures diverge" in m for m in messages)
        assert any("timer_observer" in m for m in messages)

    def test_clean_on_identical_surfaces(self):
        findings = run_engine(
            """
            class Simulator:
                timer_observer = None
                _internal = 1

                def run(self, max_time=None):
                    pass

            class FastSimulator:
                timer_observer = None

                def run(self, max_time=None):
                    pass

                def _private_helper(self):
                    pass
            """
        )
        assert not findings

    def test_silent_when_engine_module_absent(self):
        findings = run(
            """
            class Simulator:
                def run(self):
                    pass
            """,
            only=("S301",),
        )
        assert not findings


# ---------------------------------------------------------------------------
# S302: timer seam duck-safety
# ---------------------------------------------------------------------------


class TestS302TimerSeam:
    def test_fires_on_direct_invocation(self):
        findings = run(
            """
            def arm(sim, timer):
                sim.timer_observer("arm", timer)
            """
        )
        assert "S302" in rules_fired(findings)

    def test_suppressed(self):
        findings = run(
            """
            def arm(sim, timer):
                sim.timer_observer("arm", timer)  # lint: ignore[S302]
            """
        )
        assert "S302" not in rules_fired(findings)

    def test_false_positive_guard_getattr_pattern_and_factory(self):
        findings = run(
            """
            def arm(sim, timer, recorder):
                observer = getattr(sim, "timer_observer", None)
                if observer is not None:
                    observer("arm", timer)
                sim.timer_observer = recorder.timer_observer()  # factory
            """
        )
        assert "S302" not in rules_fired(findings)


# ---------------------------------------------------------------------------
# S303: obs schema conformance (fake schema module fixtures)
# ---------------------------------------------------------------------------

_SCHEMA_PATH = "src/repro/obs/schema.py"
_SCHEMA_MOD = "repro.obs.schema"

_FAKE_SCHEMA = """
    _FIELDS = {
        "span": {
            "seq": (int, False),
            "state": (str, False),
        },
        "meta": {
            "schema": (str, False),
        },
    }
    _OPTIONAL_FIELDS = {
        "span": {
            "flow": (int, False),
        },
        "meta": {},
    }
    """


def run_emitter(source):
    return run(
        source,
        path="src/repro/obs/emitter.py",
        module="repro.obs.emitter",
        only=("S303",),
        extra={_SCHEMA_PATH: (_FAKE_SCHEMA, _SCHEMA_MOD)},
    )


class TestS303SchemaConformance:
    def test_fires_on_unpinned_literal_field(self):
        findings = run_emitter(
            """
            def as_record(span):
                return {"type": "span", "seq": span.seq, "wobble": 1}
            """
        )
        assert any(
            f.rule == "S303" and "wobble" in f.message for f in findings
        )

    def test_fires_on_unpinned_subscript_field(self):
        findings = run_emitter(
            """
            def as_record(span):
                record = {"type": "span", "seq": span.seq}
                record["surprise"] = 2
                return record
            """
        )
        assert any(
            f.rule == "S303" and "surprise" in f.message for f in findings
        )

    def test_suppressed(self):
        findings = run_emitter(
            """
            def as_record(span):
                return {"type": "span", "seq": span.seq, "wobble": 1}  # lint: ignore[S303]
            """
        )
        assert "S303" not in rules_fired(findings)

    def test_false_positive_guard_pinned_and_untyped_dicts(self):
        findings = run_emitter(
            """
            def as_record(span):
                record = {"type": "span", "seq": span.seq, "state": "acked"}
                record["flow"] = 1  # pinned as optional
                config = {"type": "calendar", "buckets": 8}  # not a record type
                return record, config
            """
        )
        assert "S303" not in rules_fired(findings)

    def test_silent_when_schema_module_absent(self):
        findings = run(
            """
            def as_record(span):
                return {"type": "span", "wobble": 1}
            """,
            only=("S303",),
        )
        assert not findings


# ---------------------------------------------------------------------------
# suppression mechanics
# ---------------------------------------------------------------------------


class TestSuppressions:
    def test_bare_ignore_silences_all_rules(self):
        findings = run(
            """
            import time

            def f(pool, xs):
                t = time.time()  # lint: ignore
                return t
            """
        )
        assert not findings

    def test_named_ignore_only_silences_named_rule(self):
        findings = run(
            """
            import time
            import random

            def f():
                return time.time() + random.random()  # lint: ignore[D101]
            """
        )
        assert rules_fired(findings) == {"D102"}

    def test_suppression_must_be_on_the_finding_line(self):
        findings = run(
            """
            import time

            # lint: ignore[D101]
            def f():
                return time.time()
            """
        )
        assert "D101" in rules_fired(findings)
