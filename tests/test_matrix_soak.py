"""Combinatorial soak: every block-ack configuration axis, crossed.

One test per point of (timeout mode x numbering x ack policy x channel
condition), each with the runtime invariant monitor armed.  Shallow
individually, the matrix catches interaction bugs none of the focused
tests would (the coverage-release bug lived at exactly such an
intersection: per-message timers x bounded numbers x reordered acks).
"""

import itertools

import pytest

from repro.channel.delay import ConstantDelay, UniformDelay
from repro.channel.impairments import BernoulliLoss, GilbertElliottLoss, NoLoss
from repro.core.numbering import ModularNumbering
from repro.protocols.ack_policy import (
    CountingAckPolicy,
    DelayedAckPolicy,
    EagerAckPolicy,
)
from repro.protocols.blockack import BlockAckReceiver, BlockAckSender
from repro.sim.runner import LinkSpec, run_transfer
from repro.workloads.sources import GreedySource

WINDOW = 5
TOTAL = 80

TIMEOUT_MODES = ("simple", "per_message_safe")
NUMBERINGS = ("unbounded", "mod2w", "mod2w-K2")
ACK_POLICIES = ("eager", "delayed", "counting")
CONDITIONS = ("fifo", "jitter", "loss", "burst-loss")


def make_numbering(kind):
    if kind == "unbounded":
        return None, 1
    if kind == "mod2w":
        return ModularNumbering(WINDOW), 1
    return ModularNumbering(WINDOW, lookahead=2), 2


def make_policy(kind):
    if kind == "eager":
        return EagerAckPolicy()
    if kind == "delayed":
        return DelayedAckPolicy(0.4)
    return CountingAckPolicy(3, 0.8)


def make_link(kind):
    if kind == "fifo":
        return lambda: LinkSpec(delay=ConstantDelay(1.0))
    if kind == "jitter":
        return lambda: LinkSpec(delay=UniformDelay(0.2, 1.8))
    if kind == "loss":
        return lambda: LinkSpec(
            delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(0.1)
        )
    return lambda: LinkSpec(
        delay=ConstantDelay(1.0),
        loss=GilbertElliottLoss(0.03, 0.4, p_good=0.0, p_bad=0.7),
    )


MATRIX = list(itertools.product(TIMEOUT_MODES, NUMBERINGS, ACK_POLICIES, CONDITIONS))


@pytest.mark.parametrize(
    "mode,numbering_kind,policy_kind,condition",
    MATRIX,
    ids=["-".join(point) for point in MATRIX],
)
def test_matrix_point(mode, numbering_kind, policy_kind, condition):
    numbering, lookahead = make_numbering(numbering_kind)
    sender = BlockAckSender(
        WINDOW, numbering=numbering, timeout_mode=mode, lookahead=lookahead
    )
    receiver = BlockAckReceiver(
        WINDOW, numbering=numbering, ack_policy=make_policy(policy_kind)
    )
    link = make_link(condition)
    result = run_transfer(
        sender, receiver, GreedySource(TOTAL),
        forward=link(), reverse=link(), seed=13,
        monitor_invariants=True, max_time=500_000.0,
    )
    label = f"{mode}/{numbering_kind}/{policy_kind}/{condition}"
    assert result.completed, f"{label}: {result.summary()}"
    assert result.in_order, f"{label}: {result.summary()}"
    assert result.monitor.clean, f"{label}: {result.monitor.report()}"
