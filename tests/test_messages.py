"""Unit tests for wire message types."""

import pytest

from repro.core.messages import BlockAck, CumulativeAck, DataMessage, is_ack, is_data


class TestDataMessage:
    def test_fields(self):
        msg = DataMessage(seq=5, payload=b"x", attempt=2)
        assert msg.seq == 5
        assert msg.payload == b"x"
        assert msg.attempt == 2

    def test_defaults(self):
        msg = DataMessage(seq=0)
        assert msg.payload is None
        assert msg.attempt == 0

    def test_immutable(self):
        msg = DataMessage(seq=1)
        with pytest.raises(AttributeError):
            msg.seq = 2

    def test_str_shows_attempt_only_for_retransmissions(self):
        assert str(DataMessage(seq=3)) == "DATA(3)"
        assert str(DataMessage(seq=3, attempt=1)) == "DATA(3)#1"

    def test_equality_by_value(self):
        assert DataMessage(1, "p") == DataMessage(1, "p")
        assert DataMessage(1) != DataMessage(2)


class TestBlockAck:
    def test_singleton(self):
        assert BlockAck(4, 4).is_singleton
        assert not BlockAck(4, 6).is_singleton

    def test_spans(self):
        ack = BlockAck(3, 7)
        assert ack.spans(3) and ack.spans(5) and ack.spans(7)
        assert not ack.spans(2) and not ack.spans(8)

    def test_wrapped_pair_is_representable(self):
        # mod-n numbering may legitimately produce hi < lo on the wire
        ack = BlockAck(6, 1)
        assert ack.lo == 6 and ack.hi == 1

    def test_str(self):
        assert str(BlockAck(2, 5)) == "ACK(2,5)"

    def test_immutable(self):
        with pytest.raises(AttributeError):
            BlockAck(1, 2).lo = 0


class TestPredicates:
    def test_is_data(self):
        assert is_data(DataMessage(0))
        assert not is_data(BlockAck(0, 0))
        assert not is_data("junk")

    def test_is_ack_covers_both_kinds(self):
        assert is_ack(BlockAck(0, 0))
        assert is_ack(CumulativeAck(0))
        assert not is_ack(DataMessage(0))

    def test_cumulative_ack_str(self):
        assert str(CumulativeAck(9)) == "CACK(9)"
