"""Unit tests for wire numbering schemes."""

import pytest

from repro.core.numbering import ModularNumbering, UnboundedNumbering


class TestUnboundedNumbering:
    def test_encode_is_identity(self):
        numbering = UnboundedNumbering()
        assert numbering.encode(12345) == 12345

    def test_decodes_are_identity(self):
        numbering = UnboundedNumbering()
        assert numbering.decode_at_sender(7, na=3) == 7
        assert numbering.decode_at_receiver(7, nr=3, w=4) == 7

    def test_domain_is_none(self):
        assert UnboundedNumbering().domain_size is None


class TestModularNumbering:
    def test_default_domain_is_2w(self):
        assert ModularNumbering(8).domain_size == 16

    def test_encode_wraps(self):
        numbering = ModularNumbering(4)  # n = 8
        assert numbering.encode(0) == 0
        assert numbering.encode(8) == 0
        assert numbering.encode(11) == 3

    def test_sender_decode_within_ack_window(self):
        # assertion 9/10: na <= value < na + w
        w = 4
        numbering = ModularNumbering(w)
        for na in range(0, 30):
            for value in range(na, na + w):
                wire = numbering.encode(value)
                assert numbering.decode_at_sender(wire, na) == value

    def test_receiver_decode_within_data_window(self):
        # assertion 11: max(0, nr - w) <= value < nr + w
        w = 4
        numbering = ModularNumbering(w)
        for nr in range(0, 30):
            low = max(0, nr - w)
            for value in range(low, nr + w):
                wire = numbering.encode(value)
                assert numbering.decode_at_receiver(wire, nr, w) == value

    def test_undersized_domain_rejected_by_default(self):
        with pytest.raises(ValueError):
            ModularNumbering(4, domain_size=7)

    def test_undersized_domain_allowed_when_explicit(self):
        numbering = ModularNumbering(4, domain_size=4, strict=False)
        assert numbering.domain_size == 4

    def test_undersized_domain_misdecodes(self):
        # the paper's reason for n = 2w: n = w is ambiguous across the
        # receiver's full admissible range
        w = 4
        numbering = ModularNumbering(w, domain_size=w, strict=False)
        nr = 6
        collisions = [
            value
            for value in range(max(0, nr - w), nr + w)
            if numbering.decode_at_receiver(numbering.encode(value), nr, w)
            != value
        ]
        assert collisions  # ambiguity exists

    def test_oversized_domain_also_works(self):
        w = 4
        numbering = ModularNumbering(w, domain_size=32)
        for na in range(20):
            for value in range(na, na + w):
                assert numbering.decode_at_sender(numbering.encode(value), na) == value

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            ModularNumbering(0)
