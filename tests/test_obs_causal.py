"""Tests for the causal flight recorder, latency attribution, and analyze.

Covers the tentpole (causal graph + flight dumps + attribution exactness,
identical across engines and inert on decision traces) and the satellite
fixes that ride with it: sink durability across crash faults, per-flow
span summaries, and span lifecycles under composed faults.
"""

import json

import pytest

from repro.channel.delay import UniformDelay
from repro.channel.impairments import BernoulliLoss, BrownoutLoss
from repro.obs.analyze import (
    find_stalls,
    load_analysis,
    perfetto_trace,
    render_report,
    root_causes,
    seq_chains,
    write_perfetto,
)
from repro.obs.causal import (
    BACKOFF_TRIGGER_ATTEMPTS,
    node_record,
)
from repro.obs.schema import validate_file
from repro.obs.sink import JsonlSink, load_run, summarize_run
from repro.protocols.registry import make_pair
from repro.robustness.controller import AdaptiveConfig
from repro.robustness.corruption import StateCorruption
from repro.robustness.faults import CrashRestart, FaultPlan
from repro.sim.host import run_flows, uniform_flows
from repro.sim.runner import LinkSpec, run_transfer
from repro.workloads.sources import GreedySource


@pytest.fixture
def obs_dir(tmp_path, monkeypatch):
    """Point obs exports (and flight dumps) at a scratch directory."""
    monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
    return tmp_path


def lossy_transfer(total=150, seed=7, engine="default", causal=True, **kw):
    sender, receiver = make_pair("blockack", window=8)
    return run_transfer(
        sender,
        receiver,
        GreedySource(total),
        forward=LinkSpec(delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(0.08)),
        reverse=LinkSpec(delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(0.04)),
        seed=seed,
        engine=engine,
        causal=causal,
        **kw,
    )


def dead_link_transfer(obs_dir, total=200, seed=7):
    """A link that goes permanently dead at t=30: every trigger fires."""
    sender, receiver = make_pair("blockack", window=8, adaptive=AdaptiveConfig())
    return run_transfer(
        sender,
        receiver,
        GreedySource(total),
        forward=LinkSpec(
            delay=UniformDelay(0.5, 1.5),
            loss=BrownoutLoss([(30.0, 1.0), (1e9, 1.0)]),
        ),
        reverse=LinkSpec(delay=UniformDelay(0.5, 1.5)),
        seed=seed,
        causal=True,
        max_time=100_000,
    )


class TestAttribution:
    def test_components_sum_exactly_to_total(self):
        result = lossy_transfer()
        attributions = result.causal.attributions
        assert len(attributions) == 150
        for record in attributions.values():
            parts = (
                record["queue_wait"]
                + record["timer_wait"]
                + record["retx_wait"]
                + record["propagation"]
            )
            assert record["total"] == pytest.approx(parts, abs=1e-9)
            assert record["queue_wait"] >= 0
            assert record["timer_wait"] >= 0
            assert record["retx_wait"] >= 0
            assert record["propagation"] >= 0

    def test_retransmitted_seqs_carry_wait_components(self):
        result = lossy_transfer()
        chains = {}
        for node in result.causal.nodes():
            if node[3] == "resend_data":
                chains[node[4]] = True
        attributions = result.causal.attributions
        resent = [
            attributions[(None, seq)] for seq in chains if (None, seq) in attributions
        ]
        assert resent, "lossy run produced no observed retransmissions"
        assert any(r["timer_wait"] + r["retx_wait"] > 0 for r in resent)

    def test_as_records_sorted_by_seq(self):
        result = lossy_transfer(total=40)
        records = result.causal.as_records()
        assert [r["seq"] for r in records] == sorted(r["seq"] for r in records)
        assert all(r["type"] == "attribution" for r in records)


class TestEngineIdentity:
    def test_nodes_and_attributions_identical_across_engines(self):
        default = lossy_transfer(engine="default")
        fast = lossy_transfer(engine="fast")
        assert default.causal.nodes() == fast.causal.nodes()
        assert default.causal.attributions == fast.causal.attributions

    @pytest.mark.parametrize("engine", ["default", "fast"])
    def test_decision_trace_identical_with_causal_on_and_off(self, engine):
        on = lossy_transfer(engine=engine, causal=True, trace=True)
        off = lossy_transfer(engine=engine, causal=False, trace=True)
        key_on = [e.decision_key() for e in on.trace.events]
        key_off = [e.decision_key() for e in off.trace.events]
        assert key_on == key_off


class TestFlightRecorder:
    def test_clean_run_triggers_nothing_and_writes_nothing(self, obs_dir):
        sender, receiver = make_pair("blockack", window=8)
        result = run_transfer(
            sender,
            receiver,
            GreedySource(60),
            forward=LinkSpec(delay=UniformDelay(0.5, 1.5)),
            reverse=LinkSpec(delay=UniformDelay(0.5, 1.5)),
            seed=3,
            causal=True,
        )
        assert not result.causal.triggered
        assert result.flight_path is None
        assert list(obs_dir.rglob("*.jsonl")) == []

    def test_ring_is_bounded(self):
        result = lossy_transfer(total=300)
        causal = result.causal
        assert len(causal.ring) == causal.ring_capacity
        assert causal.events_recorded > causal.ring_capacity

    def test_dead_link_escalates_backoff_to_link_dead(self, obs_dir):
        result = dead_link_transfer(obs_dir)
        reasons = [reason for _, reason, _ in result.causal.triggers]
        assert reasons[0] == "rto_backoff"
        assert "link_dead" in reasons
        first_detail = result.causal.triggers[0][2]
        assert f"attempts={BACKOFF_TRIGGER_ATTEMPTS}" in first_detail

    def test_flight_dump_is_schema_valid_and_well_formed(self, obs_dir):
        result = dead_link_transfer(obs_dir)
        assert result.flight_path is not None
        assert validate_file(result.flight_path) == []
        records = [
            json.loads(line) for line in open(result.flight_path, encoding="utf-8")
        ]
        assert records[0]["type"] == "meta"
        assert records[0]["labels"]["flight"] == "rto_backoff"
        assert records[-1]["type"] == "snapshot"
        by_type = {}
        for record in records:
            by_type.setdefault(record["type"], []).append(record)
        assert {"meta", "trigger", "state", "causal", "attribution"} <= set(by_type)
        # parent edges resolve inside the dump and point backwards
        ids = {r["id"] for r in by_type["causal"]}
        for record in by_type["causal"]:
            parent = record["parent"]
            assert parent is None or (parent in ids and parent < record["id"])
        # endpoint snapshots carry protocol state
        endpoints = {r["endpoint"] for r in by_type["state"]}
        assert {"sender", "receiver"} <= endpoints

    def test_post_trigger_events_stream_and_fault_boundaries_flush(self, obs_dir):
        sender, receiver = make_pair("blockack", window=8)
        plan = FaultPlan(
            crashes=[CrashRestart(at=40.0, outage=5.0, endpoint="sender")],
            corruptions=[StateCorruption(at=60.0, site="sender.window")],
        )
        result = lossy_transfer(
            total=120, causal=True, fault_plan=plan, monitor_invariants=False
        )
        causal = result.causal
        # inject a manual trigger early so the dump streams during faults
        if not causal.triggered:
            pass  # triggers may already have fired on this seed
        fault_kinds = {n[3] for n in causal.nodes() if n[3].startswith("fault.")}
        assert "fault.crash" in fault_kinds
        assert "fault.restart" in fault_kinds

    def test_manual_trigger_freezes_ring_once(self):
        result = lossy_transfer(total=30)
        causal = result.causal
        causal.trigger("link_dead", "manual")
        frozen_len = len(causal.frozen)
        causal.trigger("rto_backoff", "second trigger must not re-freeze")
        assert len(causal.frozen) == frozen_len
        assert [r for _, r, _ in causal.triggers] == ["link_dead", "rto_backoff"]
        path = causal.close_flight()
        assert path is not None and validate_file(path) == []

    def test_node_record_shape(self):
        record = node_record((3, 1.5, "sender", "send_data", 7, None, 1, 2, "x"))
        assert record == {
            "type": "causal",
            "id": 3,
            "time": 1.5,
            "actor": "sender",
            "kind": "send_data",
            "seq": 7,
            "seq_hi": None,
            "parent": 1,
            "flow": 2,
            "detail": "x",
        }


class TestHostCausal:
    def test_multi_flow_attributions_are_flow_stamped_and_exact(self):
        result = run_flows(
            uniform_flows("blockack", 3, 8, 40),
            forward=LinkSpec(
                delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(0.05)
            ),
            reverse=LinkSpec(delay=UniformDelay(0.5, 1.5)),
            seed=11,
            causal=True,
        )
        attributions = result.causal.attributions
        flows_seen = {key[0] for key in attributions}
        assert flows_seen == {0, 1, 2}
        assert len(attributions) == 120
        for record in attributions.values():
            parts = (
                record["queue_wait"]
                + record["timer_wait"]
                + record["retx_wait"]
                + record["propagation"]
            )
            assert record["total"] == pytest.approx(parts, abs=1e-9)
        # channel nodes see the flow id through the mux envelope
        flow_tagged = [n for n in result.causal.nodes() if n[7] is not None]
        assert any(n[3].startswith("channel.") for n in flow_tagged)

    def test_multi_flow_nodes_identical_across_engines(self):
        kwargs = dict(
            forward=LinkSpec(
                delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(0.05)
            ),
            reverse=LinkSpec(delay=UniformDelay(0.5, 1.5)),
            seed=5,
            causal=True,
        )
        default = run_flows(
            uniform_flows("blockack", 2, 8, 30), engine="default", **kwargs
        )
        fast = run_flows(
            uniform_flows("blockack", 2, 8, 30), engine="fast", **kwargs
        )
        assert default.causal.nodes() == fast.causal.nodes()
        assert default.causal.attributions == fast.causal.attributions


class TestSinkDurability:
    """Satellite: no truncated obs files when faults end a run mid-write."""

    def test_each_record_is_one_complete_line(self, tmp_path):
        path = tmp_path / "run.jsonl"
        sink = JsonlSink(path)
        sink.write({"type": "meta", "schema": "repro.obs/v2", "run_id": "x",
                    "labels": {}})
        sink.flush()
        # readable mid-run after a flush: exactly the lines written so far
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["type"] == "meta"
        sink.close()

    def test_flush_and_close_are_idempotent_after_close(self, tmp_path):
        sink = JsonlSink(tmp_path / "run.jsonl")
        sink.write({"type": "snapshot", "metrics": {}})
        sink.close()
        sink.flush()  # must not raise on a closed handle
        sink.close()

    def test_obs_export_complete_after_crash_restart(self, obs_dir):
        sender, receiver = make_pair("blockack", window=8)
        plan = FaultPlan(
            crashes=[CrashRestart(at=30.0, outage=4.0, endpoint="sender")]
        )
        result = run_transfer(
            sender,
            receiver,
            GreedySource(80),
            forward=LinkSpec(delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(0.05)),
            reverse=LinkSpec(delay=UniformDelay(0.5, 1.5)),
            seed=13,
            fault_plan=plan,
            obs=True,
            obs_run_id="crashy",
        )
        assert result.fault_stats["crashes"] == 1
        path = result.obs.export()
        assert validate_file(path) == []


class TestPerFlowSummary:
    """Satellite: ``blockack obs summarize`` shows per-flow percentiles."""

    def test_summarize_reports_per_flow_percentiles(self, obs_dir):
        result = run_flows(
            uniform_flows("blockack", 2, 8, 25),
            forward=LinkSpec(delay=UniformDelay(0.5, 1.5)),
            reverse=LinkSpec(delay=UniformDelay(0.5, 1.5)),
            seed=11,
            obs=True,
            obs_run_id="flowsum",
        )
        path = result.obs.export()
        text = summarize_run(load_run(path))
        assert "per-flow latency" in text
        assert "flow 0:" in text and "flow 1:" in text
        assert "p50=" in text and "p95=" in text and "p99=" in text


class TestSpanLifecyclesUnderFaults:
    """Satellite: span lifecycles stay coherent under composed faults."""

    def composed_run(self, seed=13):
        sender, receiver = make_pair(
            "blockack", window=8, adaptive=AdaptiveConfig()
        )
        plan = FaultPlan(
            forward_brownout=[(8.0, 0.0), (11.0, 1.0), (1e9, 0.0)],
            crashes=[CrashRestart(at=16.0, outage=2.0, endpoint="sender")],
            corruptions=[StateCorruption(at=22.0, site="sender.window")],
        )
        return run_transfer(
            sender,
            receiver,
            GreedySource(60),
            forward=LinkSpec(delay=UniformDelay(0.5, 1.5)),
            reverse=LinkSpec(delay=UniformDelay(0.5, 1.5)),
            seed=seed,
            fault_plan=plan,
            obs=True,
            obs_run_id="composed",
            causal=True,
            max_time=5_000,
        )

    def test_resent_chains_span_channel_reset_and_repairs(self, obs_dir):
        # the corruption wedges one seq hard enough that the adaptive
        # controller eventually declares the link dead: exactly the kind
        # of run the telemetry has to survive intact
        result = self.composed_run()
        assert result.fault_stats["crashes"] == 1
        assert result.fault_stats["restarts"] == 1
        assert result.fault_stats["state_corruptions"] == 1
        dump = load_run(result.obs.export())
        spans = {r["seq"]: r for r in dump.spans}
        assert spans
        # the brownout forces resends across the plan's Channel loss
        # wrap/reset; those spans keep coherent lifecycles
        resent = [s for s in spans.values() if s["resends"] > 0]
        assert resent
        for span in spans.values():
            if span["delivered"] is not None and span["first_sent"] is not None:
                assert span["delivered"] >= span["first_sent"]
            if span["resends"] > 0 and span["last_sent"] is not None:
                assert span["last_sent"] >= span["first_sent"]
        # the run died anomalous (link_dead): the flight recorder must
        # have fired and left a schema-valid dump alongside the export
        assert result.sender_stats.get("link_dead")
        assert result.flight_path is not None
        assert validate_file(result.flight_path) == []

    def test_causal_graph_records_fault_chain(self, obs_dir):
        result = self.composed_run()
        nodes = result.causal.nodes()
        kinds = [n[3] for n in nodes if n[3].startswith("fault.")]
        assert "fault.crash" in kinds and "fault.restart" in kinds
        # fault nodes chain per endpoint: restart's parent is the crash
        by_id = {n[0]: n for n in nodes}
        restarts = [n for n in nodes if n[3] == "fault.restart"]
        assert restarts
        for node in restarts:
            parent = node[6]
            assert parent is not None
            assert by_id[parent][3].startswith("fault.")


class TestAnalyze:
    def test_report_and_perfetto_from_dead_link_dump(self, obs_dir, tmp_path):
        result = dead_link_transfer(obs_dir)
        analysis = load_analysis(result.flight_path)
        assert analysis.run_id == "transfer"
        assert len(analysis.triggers) == len(result.causal.triggers)

        chains = seq_chains(analysis)
        assert chains  # per-seq chains reconstructed

        report = render_report(analysis)
        assert "root causes" in report
        assert "Karn backoff" in report
        assert "latency attribution" in report

        causes = root_causes(analysis)
        assert causes and "loss" in causes[0]

        stalls = find_stalls(analysis)
        assert isinstance(stalls, list)

        trace = perfetto_trace(analysis)
        phases = {event["ph"] for event in trace["traceEvents"]}
        assert {"M", "X", "i"} <= phases
        out = tmp_path / "trace.json"
        write_perfetto(analysis, out)
        loaded = json.load(open(out, encoding="utf-8"))
        assert loaded["displayTimeUnit"] == "ms"

    def test_analysis_reads_attributions_back(self, obs_dir):
        result = dead_link_transfer(obs_dir)
        analysis = load_analysis(result.flight_path)
        assert analysis.attributions
        for record in analysis.attributions:
            parts = (
                record["queue_wait"]
                + record["timer_wait"]
                + record["retx_wait"]
                + record["propagation"]
            )
            assert record["total"] == pytest.approx(parts, abs=1e-9)


class TestArbiterAttribution:
    """Link-arbiter queue wait folds into the attribution telescoping.

    With a finite link rate, a frame's causal chain gains a wait *before*
    the channel (the arbiter queue).  The recorder folds that gap into
    ``queue_wait`` (and reports it separately as ``link_wait``), so the
    four components must still telescope exactly to submit→deliver —
    arbitration moves latency between buckets, it never leaks any.
    """

    def _arbitrated_session(self, engine="default", sched="drr"):
        from repro.channel.arbiter import ArbiterConfig
        from repro.sim.host import mixed_flows, run_flows

        return run_flows(
            mixed_flows("blockack", (4, 16), 400, timeout_modes=None),
            forward=LinkSpec(delay=UniformDelay(0.5, 1.5)),
            reverse=LinkSpec(delay=UniformDelay(0.5, 1.5)),
            seed=11,
            max_time=40.0,
            causal=True,
            engine=engine,
            arbiter=ArbiterConfig(rate=3.0, scheduler=sched),
        )

    @pytest.mark.parametrize("engine", ["default", "fast"])
    def test_components_sum_exactly_with_arbiter(self, engine):
        session = self._arbitrated_session(engine=engine)
        attributions = session.causal.attributions
        assert attributions, "arbitrated session recorded no deliveries"
        for record in attributions.values():
            parts = (
                record["queue_wait"]
                + record["timer_wait"]
                + record["retx_wait"]
                + record["propagation"]
            )
            assert record["total"] == pytest.approx(parts, abs=1e-9)
            assert record.get("link_wait", 0.0) >= 0
            # link_wait is a sub-component of queue_wait, never more
            assert record.get("link_wait", 0.0) <= record["queue_wait"] + 1e-9

    def test_saturated_link_shows_link_wait(self):
        session = self._arbitrated_session()
        attributions = session.causal.attributions
        waited = [
            record for record in attributions.values()
            if record.get("link_wait", 0.0) > 0
        ]
        # rate 3 against windows 4+16 of greedy demand: most delivered
        # frames queued at the arbiter before reaching the wire
        assert waited, "saturating arbiter produced no link_wait"

    def test_unarbitrated_records_omit_link_wait(self):
        result = lossy_transfer()
        for record in result.causal.attributions.values():
            assert "link_wait" not in record


class TestRecorderOverheadSeam:
    def test_timer_observer_default_is_none_on_both_engines(self):
        from repro.sim.engine import FastSimulator, Simulator

        assert Simulator.timer_observer is None
        assert FastSimulator.timer_observer is None
        assert Simulator().timer_observer is None
        assert FastSimulator().timer_observer is None
