"""Tests for the ``blockack obs`` command group."""

import json

import pytest

from repro.cli.main import build_parser, main
from repro.obs.schema import validate_file


@pytest.fixture()
def obs_dir(tmp_path, monkeypatch):
    """Point exports at a scratch directory for the duration of a test."""
    monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
    return tmp_path


def export(obs_dir, seed=11, messages=80, extra=()):
    code = main([
        "obs", "export", "--messages", str(messages), "--seed", str(seed),
        *extra,
    ])
    assert code == 0
    paths = sorted(obs_dir.glob("*.jsonl"))
    assert paths
    return paths[-1]


class TestParser:
    def test_obs_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs"])

    def test_export_defaults(self):
        args = build_parser().parse_args(["obs", "export"])
        assert args.protocol == "blockack"
        assert args.messages == 400
        assert args.probe_every == 0

    def test_run_obs_flag(self):
        args = build_parser().parse_args(["run", "e3", "--quick", "--obs"])
        assert args.obs


class TestExport:
    def test_writes_schema_valid_jsonl(self, obs_dir, capsys):
        path = export(obs_dir)
        assert validate_file(path) == []
        out = capsys.readouterr().out
        assert "wrote" in out and "delivered" in out

    def test_explicit_output_path(self, obs_dir, tmp_path, capsys):
        target = tmp_path / "custom" / "cell.jsonl"
        code = main([
            "obs", "export", "--messages", "40", "--output", str(target),
        ])
        assert code == 0
        assert target.exists()
        assert validate_file(target) == []

    def test_probe_flag_reports(self, obs_dir, capsys):
        export(obs_dir, extra=("--probe-every", "32"))
        out = capsys.readouterr().out
        assert "invariant" in out.lower()


class TestSummarize:
    def test_summary_lists_spans_and_metrics(self, obs_dir, capsys):
        path = export(obs_dir)
        capsys.readouterr()
        assert main(["obs", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "span states" in out
        assert "retransmissions" in out

    def test_text_mode_is_prometheus_format(self, obs_dir, capsys):
        path = export(obs_dir)
        capsys.readouterr()
        assert main(["obs", "summarize", str(path), "--text"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE delivery_latency histogram" in out
        assert "delivery_latency_count" in out


class TestDiff:
    def test_same_seed_agrees(self, obs_dir, capsys):
        left = export(obs_dir, seed=11)
        right_path = obs_dir / "copy.jsonl"
        right_path.write_text(left.read_text())
        capsys.readouterr()
        assert main(["obs", "diff", str(left), str(right_path)]) == 0
        assert "agree" in capsys.readouterr().out

    def test_two_seeds_report_counter_deltas(self, obs_dir, capsys):
        left = export(obs_dir, seed=11)
        right = export(obs_dir, seed=12)
        assert left != right
        capsys.readouterr()
        assert main(["obs", "diff", str(left), str(right)]) == 0
        out = capsys.readouterr().out
        assert "->" in out
        assert "series differ" in out


class TestSweepIntegration:
    @staticmethod
    def sweep_config(obs=True, **overrides):
        from repro.channel.delay import UniformDelay
        from repro.channel.impairments import BernoulliLoss
        from repro.perf.sweep import RunConfig
        from repro.sim.runner import LinkSpec

        def link():
            return LinkSpec(delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(0.05))

        kwargs = dict(
            protocol="blockack", window=8, total=40,
            forward=link(), reverse=link(), seed=3,
            max_time=100_000.0, obs=obs,
        )
        kwargs.update(overrides)
        return RunConfig(**kwargs)

    def test_run_config_id_is_deterministic(self):
        a = self.sweep_config()
        b = self.sweep_config()
        assert a.run_id() == b.run_id()
        # obs is part of the cache key, so the ids differ too
        assert a.run_id() != self.sweep_config(obs=False).run_id()

    def test_execute_config_exports_when_obs_on(self, obs_dir):
        from repro.perf.sweep import execute_config

        result = execute_config(self.sweep_config())
        assert result.obs_path is not None
        assert validate_file(result.obs_path) == []
        meta = json.loads(open(result.obs_path).readline())
        assert meta["labels"]["protocol"] == "blockack"

    def test_serialization_carries_obs_path(self, obs_dir):
        from repro.perf.sweep import (
            deserialize_result,
            execute_config,
            serialize_result,
        )

        result = execute_config(self.sweep_config())
        restored = deserialize_result(serialize_result(result))
        assert restored.obs_path == result.obs_path

    def test_obs_enabled_by_env(self, monkeypatch):
        from repro.perf.sweep import obs_enabled_by_env

        monkeypatch.delenv("REPRO_OBS", raising=False)
        assert obs_enabled_by_env() is False
        monkeypatch.setenv("REPRO_OBS", "1")
        assert obs_enabled_by_env() is True
        monkeypatch.setenv("REPRO_OBS", "0")
        assert obs_enabled_by_env() is False
