"""Tests for the metrics registry and text exposition."""

import math

import pytest

from repro.obs.metrics import (
    COUNT_BUCKETS,
    DEFAULT_REGISTRY,
    NULL_COUNTER,
    NULL_REGISTRY,
    MetricsRegistry,
    TextExposition,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_labelled_series_are_independent(self):
        registry = MetricsRegistry()
        counter = registry.counter("by_link", labelnames=("link",))
        counter.labels(link="SR").inc()
        counter.labels(link="SR").inc()
        counter.labels(link="RS").inc()
        assert counter.value_for(link="SR") == 2.0
        assert counter.value_for(link="RS") == 1.0

    def test_bound_child_is_cached(self):
        registry = MetricsRegistry()
        counter = registry.counter("c", labelnames=("x",))
        assert counter.labels(x="a") is counter.labels(x="a")

    def test_unlabelled_use_of_labelled_metric_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("c", labelnames=("x",))
        with pytest.raises(ValueError):
            counter.inc()

    def test_wrong_label_names_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("c", labelnames=("x",))
        with pytest.raises(ValueError):
            counter.labels(y="a")


class TestGauge:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(5.0)
        gauge.inc()
        gauge.dec(2.0)
        assert gauge.value == 4.0


class TestHistogram:
    def test_observations_land_in_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            hist.observe(value)
        child = hist._children[()]
        assert child.counts == [1, 1, 1, 1]  # last is the +inf bucket
        assert hist.count == 4
        assert hist.sum == 105.0

    def test_quantile_upper_bound(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 0.6, 0.7, 3.0):
            hist.observe(value)
        assert hist._children[()].quantile(0.5) == 1.0
        assert hist._children[()].quantile(1.0) == 4.0

    def test_overflow_quantile_is_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0,))
        hist.observe(50.0)
        assert hist._children[()].quantile(1.0) == math.inf

    def test_buckets_must_be_finite_nonempty(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("bad", buckets=(math.inf,))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(ValueError):
            registry.gauge("name")

    def test_scoped_registries_do_not_share(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc()
        assert b.counter("c").value == 0.0

    def test_default_registry_exists(self):
        assert DEFAULT_REGISTRY.null is False

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c", help="a counter").inc()
        registry.histogram("h", buckets=COUNT_BUCKETS).observe(3)
        snap = registry.snapshot()
        assert snap["c"]["type"] == "counter"
        assert snap["c"]["samples"] == [{"labels": {}, "value": 1.0}]
        hist = snap["h"]["samples"][0]
        assert len(hist["counts"]) == len(hist["buckets"]) + 1


class TestNullRegistry:
    def test_every_declaration_is_the_shared_singleton(self):
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b")
        assert NULL_REGISTRY.counter("a") is NULL_COUNTER

    def test_null_instruments_absorb_everything(self):
        counter = NULL_REGISTRY.counter("c", labelnames=("x",))
        counter.labels(x="a").inc()
        counter.inc(5)
        NULL_REGISTRY.histogram("h").observe(1.0)
        NULL_REGISTRY.gauge("g").set(2.0)
        assert counter.value == 0.0
        assert NULL_REGISTRY.snapshot() == {}
        assert NULL_REGISTRY.render_text() == ""

    def test_null_flag_for_identity_checks(self):
        assert NULL_REGISTRY.null is True


class TestTextExposition:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("c", help="things").inc(2)
        registry.gauge("g").set(1.5)
        text = registry.render_text()
        assert "# HELP c things" in text
        assert "# TYPE c counter" in text
        assert "c 2" in text
        assert "g 1.5" in text

    def test_histogram_renders_cumulative_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(1.5)
        text = registry.render_text()
        assert 'h_bucket{le="1"} 1' in text
        assert 'h_bucket{le="2"} 2' in text
        assert 'h_bucket{le="+Inf"} 2' in text
        assert "h_sum 2" in text
        assert "h_count 2" in text

    def test_labels_sorted_and_quoted(self):
        registry = MetricsRegistry()
        counter = registry.counter("c", labelnames=("z", "a"))
        counter.labels(z="1", a="2").inc()
        assert 'c{a="2",z="1"} 1' in registry.render_text()

    def test_render_counters_convenience(self):
        text = TextExposition.render_counters(
            "udp", {"sent": 3, "received": 2}, labels={"side": "client"}
        )
        assert 'udp_sent_total{side="client"} 3' in text
        assert 'udp_received_total{side="client"} 2' in text
