"""Tests for the sampled invariant probe and the Observability session."""

import pytest

from repro.channel.channel import Channel
from repro.channel.delay import UniformDelay
from repro.channel.impairments import BernoulliLoss
from repro.core.messages import BlockAck, DataMessage
from repro.obs.metrics import MetricsRegistry
from repro.obs.probes import InvariantProbe
from repro.obs.session import Observability
from repro.protocols.registry import make_pair
from repro.sim.runner import LinkSpec, run_transfer
from repro.trace.events import EventKind
from repro.trace.recorder import TraceRecorder
from repro.workloads.sources import GreedySource


def lossy_transfer(total=80, **obs_kwargs):
    sender, receiver = make_pair("blockack", window=8, bounded_wire=True)
    return run_transfer(
        sender,
        receiver,
        GreedySource(total),
        forward=LinkSpec(delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(0.1)),
        reverse=LinkSpec(delay=UniformDelay(0.5, 1.5)),
        seed=7,
        max_time=100_000.0,
        obs=True,
        **obs_kwargs,
    )


class TestProbeUnit:
    def make_probe(self, sim, **kwargs):
        forward = Channel(sim)
        reverse = Channel(sim)
        forward.connect(lambda m: None)
        reverse.connect(lambda m: None)
        sender, receiver = make_pair("blockack", window=4)
        return (
            InvariantProbe(sender, receiver, forward, reverse, **kwargs),
            forward,
            reverse,
        )

    def test_sample_every_must_be_positive(self, sim):
        with pytest.raises(ValueError):
            self.make_probe(sim, sample_every=0)

    def test_sweep_runs_once_per_period(self, sim):
        probe, forward, _ = self.make_probe(sim, sample_every=3)
        for seq in range(7):
            forward.send(DataMessage(seq=seq, payload=None))
        sim.run()
        # 7 sends + 7 delivers = 14 events -> 4 sweeps
        assert probe.events_seen == 14
        assert probe.checks_run == 4

    def test_duplicate_data_flagged_as_metric_and_note(self, sim):
        registry = MetricsRegistry()
        recorder = TraceRecorder(sim)
        probe, forward, _ = self.make_probe(
            sim, sample_every=1, registry=registry, recorder=recorder
        )
        forward.send(DataMessage(seq=5, payload=None))
        forward.send(DataMessage(seq=5, payload=None))  # same wire number
        assert not probe.clean
        violations = registry.get("invariant_violations_total")
        assert violations.value_for(clause="8: duplicate data in transit") >= 1
        notes = recorder.filter(kind=EventKind.NOTE, actor="probe")
        assert notes and "duplicate data" in notes[0].detail

    def test_overlapping_acks_flagged(self, sim):
        probe, _, reverse = self.make_probe(sim, sample_every=1)
        reverse.send(BlockAck(lo=0, hi=3))
        reverse.send(BlockAck(lo=2, hi=5))
        assert any("overlapping acks" in v.clause for v in probe.violations)

    def test_probe_never_raises(self, sim):
        probe, forward, _ = self.make_probe(sim, sample_every=1)
        forward.send(DataMessage(seq=1, payload=None))
        forward.send(DataMessage(seq=1, payload=None))
        # strict mode is forced off: violations collect, nothing raised
        assert probe.strict is False
        assert len(probe.violations) >= 1


class TestProbeInTransfer:
    def test_clean_protocol_zero_violations(self):
        result = lossy_transfer(obs_sample_invariants_every=16)
        probe = result.obs.probe
        assert result.completed
        assert probe is not None
        assert probe.checks_run > 0
        assert probe.clean
        checks = result.obs.registry.get("invariant_checks_total")
        assert checks.value == probe.checks_run

    def test_probe_off_by_default(self):
        result = lossy_transfer()
        assert result.obs.probe is None


class TestObservabilitySession:
    def test_rejects_negative_sampling(self):
        with pytest.raises(ValueError):
            Observability(sample_invariants_every=-1)

    def test_scoped_sessions_do_not_share_series(self):
        a = lossy_transfer(obs_run_id="a")
        b = lossy_transfer(obs_run_id="b")
        assert a.obs.registry is not b.obs.registry

    def test_transfer_metrics_populated(self):
        result = lossy_transfer(obs_run_id="metrics")
        registry = result.obs.registry
        assert registry.get("sim_events_fired_total").value > 0
        assert registry.get("channel_events_total").value_for(
            link="SR", outcome="send"
        ) > 0
        assert registry.get("delivery_latency").count == result.delivered
        assert registry.get("transfer_completed").value == 1.0
        # the lossy link forced retransmissions, visible in the spans
        resends = sum(s.resends for s in result.obs.span_tracker.spans.values())
        assert resends > 0

    def test_rtt_telemetry_from_adaptive_controller(self):
        from repro.robustness import AdaptiveConfig

        sender, receiver = make_pair(
            "blockack", window=8, adaptive=AdaptiveConfig()
        )
        result = run_transfer(
            sender,
            receiver,
            GreedySource(80),
            forward=LinkSpec(
                delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(0.1)
            ),
            reverse=LinkSpec(delay=UniformDelay(0.5, 1.5)),
            seed=7,
            max_time=100_000.0,
            obs=True,
            obs_run_id="rtt",
        )
        rtt = result.obs.registry.get("rtt_sample")
        assert rtt is not None and rtt.count > 0

    def test_fixed_timer_sender_has_no_rtt_series(self):
        result = lossy_transfer(obs_run_id="rtt_off")
        assert result.obs.registry.get("rtt_sample") is None

    def test_latencies_match_unobserved_run(self):
        observed = lossy_transfer(obs_run_id="obs_on")
        sender, receiver = make_pair("blockack", window=8, bounded_wire=True)
        plain = run_transfer(
            sender,
            receiver,
            GreedySource(80),
            forward=LinkSpec(
                delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(0.1)
            ),
            reverse=LinkSpec(delay=UniformDelay(0.5, 1.5)),
            seed=7,
            max_time=100_000.0,
        )
        # telemetry must not perturb the simulation: same seed, same
        # delivery schedule, same latencies
        assert observed.latencies == pytest.approx(plain.latencies)
        assert observed.duration == plain.duration

    def test_export_is_schema_valid(self, tmp_path):
        from repro.obs.schema import validate_file
        from repro.obs.sink import load_run

        result = lossy_transfer(obs_run_id="export_test")
        path = result.obs.export(path=tmp_path / "export_test.jsonl")
        assert validate_file(path) == []
        dump = load_run(path)
        assert dump.run_id == "export_test"
        assert len(dump.spans) == 80
        assert "delivery_latency" in dump.snapshot
