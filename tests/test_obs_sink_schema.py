"""Tests for the JSONL sink, run loading, diffing, and the schema gate."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import validate_file, validate_record, validate_records
from repro.obs.sink import (
    SCHEMA_VERSION,
    JsonlSink,
    diff_snapshots,
    load_run,
    read_records,
    summarize_run,
)


def meta(run_id="r1"):
    return {
        "type": "meta",
        "schema": SCHEMA_VERSION,
        "run_id": run_id,
        "labels": {},
    }


def span(seq=0, state="delivered"):
    return {
        "type": "span",
        "seq": seq,
        "state": state,
        "submitted": 0.0,
        "first_sent": 0.5,
        "last_sent": 0.5,
        "acked": 2.0,
        "delivered": 1.5,
        "sends": 1,
        "resends": 0,
        "timeouts": 0,
    }


def snapshot(metrics=None):
    return {"type": "snapshot", "metrics": metrics or {}}


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlSink(path) as sink:
            sink.write(meta())
            sink.write_all([span(), snapshot()])
        assert sink.records_written == 3
        records = read_records(path)
        assert [r["type"] for r in records] == ["meta", "span", "snapshot"]

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "a" / "b" / "run.jsonl"
        with JsonlSink(path) as sink:
            sink.write(meta())
        assert path.exists()

    def test_untyped_record_rejected(self, tmp_path):
        with JsonlSink(tmp_path / "run.jsonl") as sink:
            with pytest.raises(ValueError):
                sink.write({"no": "type"})

    def test_non_json_values_coerced(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlSink(path) as sink:
            sink.write({"type": "meta", "detail": object()})
        (record,) = read_records(path)
        assert isinstance(record["detail"], str)

    def test_malformed_jsonl_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "meta"}\nnot json\n')
        with pytest.raises(ValueError, match="2"):
            read_records(path)


class TestLoadRun:
    def test_records_sorted_into_sections(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlSink(path) as sink:
            sink.write(meta("abc"))
            sink.write({"type": "event", "time": 0.0, "actor": "s",
                        "kind": "send_data", "seq": 0})
            sink.write(span())
            sink.write(snapshot({"c": {"type": "counter", "help": "",
                                       "samples": [{"labels": {}, "value": 1}]}}))
        dump = load_run(path)
        assert dump.run_id == "abc"
        assert len(dump.events) == 1 and len(dump.spans) == 1
        assert "c" in dump.snapshot

    def test_summarize_mentions_states_and_metrics(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlSink(path) as sink:
            sink.write(meta())
            sink.write(span())
            sink.write(snapshot({"c": {"type": "counter", "help": "",
                                       "samples": [{"labels": {}, "value": 3}]}}))
        text = summarize_run(load_run(path))
        assert "delivered=1" in text
        assert "c: 3" in text
        assert "latency" in text


class TestDiffSnapshots:
    def test_identical_snapshots_agree(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        snap = registry.snapshot()
        assert diff_snapshots(snap, snap) == []

    def test_counter_delta_reported(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(5)
        (line,) = diff_snapshots(a.snapshot(), b.snapshot())
        assert line == "c: 2 -> 5 (+3)"

    def test_one_sided_series_flagged(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("only_left").inc()
        b.counter("only_right").inc()
        lines = diff_snapshots(a.snapshot(), b.snapshot())
        assert any("(absent)" in line for line in lines)
        assert len(lines) == 2

    def test_histograms_compared_via_count_and_sum(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b.histogram("h", buckets=(1.0,)).observe(0.5)
        b.histogram("h").observe(0.5)
        lines = diff_snapshots(a.snapshot(), b.snapshot())
        assert any(line.startswith("h_count") for line in lines)


class TestSchemaValidation:
    def test_valid_file_passes(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlSink(path) as sink:
            sink.write(meta())
            sink.write(span())
            sink.write(snapshot())
        assert validate_file(path) == []

    def test_exported_registry_snapshot_validates(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c", labelnames=("x",)).labels(x="1").inc()
        registry.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        path = tmp_path / "run.jsonl"
        with JsonlSink(path) as sink:
            sink.write(meta())
            sink.write(snapshot(registry.snapshot()))
        assert validate_file(path) == []

    def test_unknown_record_type_rejected(self):
        assert validate_record({"type": "mystery"}, 1)

    def test_unknown_event_kind_rejected(self):
        errors = validate_record(
            {"type": "event", "time": 0.0, "actor": "s", "kind": "nope"}, 1
        )
        assert any("event kind" in e for e in errors)

    def test_bool_is_not_a_number(self):
        errors = validate_record(
            {"type": "event", "time": True, "actor": "s", "kind": "send_data"}, 1
        )
        assert any("time" in e for e in errors)

    def test_wrong_schema_version_rejected(self):
        record = meta()
        record["schema"] = "repro.obs/v999"
        assert any("unsupported schema" in e for e in validate_record(record, 1))

    def test_meta_must_be_first_and_unique(self):
        errors = validate_records([span(), meta(), snapshot()])
        assert any("first line" in e for e in errors)
        errors = validate_records([meta(), meta(), snapshot()])
        assert any("exactly one meta" in e for e in errors)

    def test_exactly_one_snapshot_required(self):
        errors = validate_records([meta(), span()])
        assert any("exactly one snapshot" in e for e in errors)

    def test_histogram_counts_length_checked(self):
        bad = snapshot({
            "h": {"type": "histogram", "help": "", "samples": [
                {"labels": {}, "buckets": [1.0, 2.0], "counts": [1, 2],
                 "sum": 0.0, "count": 3},
            ]},
        })
        errors = validate_records([meta(), bad])
        assert any("+inf bucket" in e for e in errors)

    def test_cli_check(self, tmp_path, capsys):
        from repro.obs.schema import main

        good = tmp_path / "good.jsonl"
        with JsonlSink(good) as sink:
            sink.write(meta())
            sink.write(snapshot())
        assert main(["--check", str(tmp_path)]) == 0
        assert "ok" in capsys.readouterr().out

        bad = tmp_path / "bad.jsonl"
        bad.write_text(json.dumps({"type": "span"}) + "\n")
        assert main(["--check", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out
