"""Tests for virtual-time spans and the recorder tee."""

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import LIFECYCLE_STATES, ObsRecorder, SeqSpan, SpanTracker
from repro.trace.events import EventKind
from repro.trace.recorder import TraceRecorder


def make_tracker():
    return SpanTracker(MetricsRegistry())


class TestSeqSpan:
    def test_lifecycle_state_progression(self):
        span = SeqSpan(0)
        assert span.state == "submitted"
        span.sends = 1
        assert span.state == "sent"
        span.resends = 1
        assert span.state == "resent"
        span.acked_at = 5.0
        assert span.state == "acked"
        span.delivered_at = 6.0
        assert span.state == "delivered"
        assert span.state in LIFECYCLE_STATES

    def test_latency_and_time_in_window(self):
        span = SeqSpan(0)
        span.submitted_at = 1.0
        span.acked_at = 4.0
        span.delivered_at = 3.0
        assert span.time_in_window == 3.0
        assert span.latency == 2.0

    def test_incomplete_span_has_no_latency(self):
        span = SeqSpan(0)
        span.submitted_at = 1.0
        assert span.latency is None
        assert not span.complete


class TestSpanTracker:
    def test_send_resend_ack_deliver_cycle(self):
        tracker = make_tracker()
        tracker.on_submit(0, 0.0)
        tracker.on_event(1.0, "sender", EventKind.SEND_DATA, 0, None, None)
        tracker.on_event(3.0, "sender", EventKind.RESEND_DATA, 0, None, None)
        tracker.on_event(5.0, "sender", EventKind.RECV_ACK, 0, 0, None)
        tracker.on_event(4.0, "receiver", EventKind.DELIVER, 0, None, None)
        span = tracker.spans[0]
        assert span.sends == 2 and span.resends == 1
        assert span.first_sent_at == 1.0 and span.last_sent_at == 3.0
        assert span.acked_at == 5.0 and span.delivered_at == 4.0
        assert span.complete

    def test_block_ack_marks_every_covered_seq(self):
        tracker = make_tracker()
        for seq in range(4):
            tracker.on_submit(seq, 0.0)
            tracker.on_event(1.0, "sender", EventKind.SEND_DATA, seq, None, None)
        tracker.on_event(6.0, "sender", EventKind.RECV_ACK, 0, 3, None)
        assert all(tracker.spans[seq].acked_at == 6.0 for seq in range(4))
        # the n-m+1 block size was observed once
        block = tracker.registry.get("ack_block_size")
        assert block.count == 1 and block.sum == 4.0

    def test_deliver_is_idempotent(self):
        tracker = make_tracker()
        tracker.on_submit(0, 0.0)
        assert tracker.on_deliver(0, 2.0) == 2.0
        assert tracker.on_deliver(0, 9.0) is None  # second call ignored
        assert tracker.spans[0].delivered_at == 2.0

    def test_latencies_in_seq_order(self):
        tracker = make_tracker()
        for seq, latency in ((2, 5.0), (0, 1.0), (1, 3.0)):
            tracker.on_submit(seq, 0.0)
            tracker.on_deliver(seq, latency)
        assert tracker.latencies() == [1.0, 3.0, 5.0]

    def test_incomplete_spans_reported(self):
        tracker = make_tracker()
        tracker.on_submit(0, 0.0)
        tracker.on_submit(1, 0.0)
        tracker.on_deliver(0, 1.0)
        tracker.on_event(2.0, "sender", EventKind.RECV_ACK, 0, 0, None)
        stuck = tracker.incomplete()
        assert [span.seq for span in stuck] == [1]

    def test_timeout_and_window_open_counters(self):
        tracker = make_tracker()
        tracker.on_event(1.0, "sender", EventKind.TIMEOUT, 0, None, None)
        tracker.on_event(2.0, "sender", EventKind.WINDOW_OPEN, None, None, None)
        assert tracker.registry.get("timeouts_total").value == 1.0
        assert tracker.registry.get("window_open_total").value == 1.0
        assert tracker.spans[0].timeouts == 1

    def test_span_records_are_json_shaped(self):
        tracker = make_tracker()
        tracker.on_submit(0, 0.0)
        tracker.on_deliver(0, 1.0)
        (record,) = tracker.as_records()
        assert record["type"] == "span"
        assert record["seq"] == 0
        assert record["state"] == "delivered"


class TestObsRecorder:
    def test_tee_feeds_tracker_and_inner(self, sim):
        tracker = make_tracker()
        inner = TraceRecorder(sim)
        tee = ObsRecorder(sim, tracker, inner)
        sim.schedule(2.0, tee.record, "sender", EventKind.SEND_DATA, 7)
        sim.run()
        # tracker saw it at virtual time 2.0
        assert tracker.spans[7].first_sent_at == 2.0
        # the wrapped recorder got the unmodified record
        assert inner.events[0].seq == 7 and inner.events[0].time == 2.0

    def test_read_side_delegates(self, sim):
        inner = TraceRecorder(sim)
        tee = ObsRecorder(sim, make_tracker(), inner)
        tee.record("sender", EventKind.SEND_DATA, seq=0)
        assert tee.events is inner.events
        assert tee.count(EventKind.SEND_DATA) == 1
        assert tee.decision_trace() == inner.decision_trace()
        assert tee.dropped_events == 0
        assert tee.enabled

    def test_dropped_events_surface_through_tee(self, sim):
        inner = TraceRecorder(sim, capacity=1)
        tee = ObsRecorder(sim, make_tracker(), inner)
        tee.record("sender", EventKind.SEND_DATA, seq=0)
        tee.record("sender", EventKind.SEND_DATA, seq=1)
        assert tee.dropped_events == 1
        # spans still track the dropped event — capacity bounds the
        # stored trace, not the telemetry
        assert 1 in tee._tracker.spans
