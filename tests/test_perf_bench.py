"""Unit tests for the perf-regression harness (:mod:`repro.perf.bench`)."""

import json

import pytest

from repro.perf.bench import (
    _channel_transit,
    _engine_chain,
    _engine_fanout,
    _transfer,
    compare_bench,
    main,
    run_profile,
    update_bench_json,
)


class TestCompareBench:
    BASELINE = {
        "micro": {"chain": 1_000_000.0, "fanout": 500_000.0},
        "experiments": {"e1": 1.0, "e2": 2.0},
    }

    def test_within_budget_is_clean(self):
        current = {
            "micro": {"chain": 990_000.0, "fanout": 510_000.0},
            "experiments": {"e1": 1.1, "e2": 1.9},
        }
        assert compare_bench(current, self.BASELINE) == []

    def test_micro_drop_and_experiment_rise_flagged(self):
        current = {
            "micro": {"chain": 500_000.0, "fanout": 510_000.0},
            "experiments": {"e1": 2.0, "e2": 1.9},
        }
        lines = compare_bench(current, self.BASELINE, threshold=0.25)
        assert len(lines) == 2
        assert any("micro.chain" in line for line in lines)
        assert any("experiments.e1" in line for line in lines)

    def test_missing_measurement_is_flagged_not_skipped(self):
        """A metric that silently stops being measured must surface: a
        vanished micro would otherwise pass every comparison forever."""
        current = {
            "micro": {"chain": 1_000_000.0},  # fanout vanished
            "experiments": {"e1": 1.0},  # e2 vanished
        }
        lines = compare_bench(current, self.BASELINE)
        assert len(lines) == 2
        assert any(
            "micro.fanout" in line and "missing measurement" in line
            for line in lines
        )
        assert any(
            "experiments.e2" in line and "missing measurement" in line
            for line in lines
        )

    def test_new_metrics_absent_from_baseline_are_ignored(self):
        current = {
            "micro": dict(self.BASELINE["micro"], brand_new=1.0),
            "experiments": dict(self.BASELINE["experiments"], e99=50.0),
        }
        assert compare_bench(current, self.BASELINE) == []

    def test_zero_baseline_entries_are_skipped(self):
        baseline = {"micro": {"broken": 0.0}, "experiments": {}}
        assert compare_bench({"micro": {}}, baseline) == []

    def test_main_warns_and_exit_codes(self, tmp_path, capsys):
        fresh = tmp_path / "fresh.json"
        base = tmp_path / "base.json"
        base.write_text(json.dumps(self.BASELINE))
        fresh.write_text(json.dumps({"micro": {"chain": 100.0}}))
        argv = ["--compare", str(fresh), "--baseline", str(base)]
        assert main(argv) == 0  # warn-only by default
        out = capsys.readouterr().out
        assert "::warning title=perf regression::" in out
        assert "::warning title=missing measurement::" in out
        assert main(argv + ["--strict"]) == 1


class TestUpdateBenchJson:
    def test_sections_merge_independently(self, tmp_path):
        path = tmp_path / "BENCH_quick.json"
        update_bench_json(path, "quick", micro={"chain": 1.0})
        update_bench_json(path, "quick", experiments={"e1": 0.5})
        data = json.loads(path.read_text())
        assert data["micro"] == {"chain": 1.0}
        assert data["experiments"] == {"e1": 0.5}
        assert data["mode"] == "quick"


class TestWorkloads:
    """The micro workloads themselves, at tiny sizes, on both engines."""

    @pytest.mark.parametrize("engine", ["default", "fast"])
    def test_engine_workloads_count_events(self, engine):
        assert _engine_chain(500, engine=engine) == 500
        assert _engine_fanout(500, engine=engine) == 500
        assert _channel_transit(200, engine=engine) == 200

    def test_transfer_engines_agree(self):
        delivered_default, throughput_default = _transfer(60)
        delivered_fast, throughput_fast = _transfer(60, engine="fast")
        assert delivered_default == delivered_fast == 60
        # virtual-time throughput is deterministic and engine-invariant
        assert throughput_default == throughput_fast


def test_run_profile_writes_dumps(tmp_path):
    written = run_profile(tmp_path, scale=1, engines=("fast",), top=5)
    names = sorted(p.name for p in written)
    assert names == ["transfer_fast.prof", "transfer_fast.txt"]
    report = (tmp_path / "transfer_fast.txt").read_text()
    assert "engine='fast'" in report
    assert "cumulative" in report and "internal" in report
    assert (tmp_path / "transfer_fast.prof").stat().st_size > 0
