"""Tests for the parallel sweep runner and its on-disk result cache.

The load-bearing property is *byte-identical determinism*: for the same
configs, the serial path, the process-pool path, and the cached path
must produce results that serialize to the exact same JSON payloads, so
experiment tables regenerate identically however they were computed.
"""

import json

import pytest

from repro.channel.delay import UniformDelay
from repro.channel.impairments import BernoulliLoss, FrameCorruption
from repro.perf.cache import ResultCache, config_digest
from repro.perf.sweep import (
    RunConfig,
    SweepRunner,
    default_jobs,
    deserialize_result,
    execute_config,
    run_protocol_grid,
    serialize_result,
)
from repro.robustness.faults import CrashRestart, FaultPlan
from repro.sim.runner import LinkSpec


def lossy_link(p=0.05):
    return LinkSpec(delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(p))


def make_grid(seeds=(0, 1, 2), protocol="blockack", **kwargs):
    return [
        RunConfig(
            protocol=protocol, window=4, total=60,
            forward=lossy_link(), reverse=lossy_link(), seed=seed,
            max_time=100_000.0, protocol_kwargs=dict(kwargs),
        )
        for seed in seeds
    ]


class TestRunConfigKeys:
    def test_cache_key_is_stable(self):
        a, b = make_grid(seeds=(5, 5))
        assert a.cache_key() == b.cache_key()

    def test_cache_key_distinguishes_seed(self):
        a, b = make_grid(seeds=(5, 6))
        assert a.cache_key() != b.cache_key()

    def test_cache_key_distinguishes_protocol_kwargs(self):
        (a,) = make_grid(seeds=(5,))
        (b,) = make_grid(seeds=(5,), timeout_mode="per_message_safe")
        assert a.cache_key() != b.cache_key()

    def test_cache_key_distinguishes_links(self):
        (a,) = make_grid(seeds=(5,))
        b = RunConfig(
            protocol="blockack", window=4, total=60,
            forward=lossy_link(0.2), reverse=lossy_link(), seed=5,
            max_time=100_000.0,
        )
        assert a.cache_key() != b.cache_key()

    def test_cache_key_covers_fault_plan(self):
        def with_plan(at):
            return RunConfig(
                protocol="blockack", window=4, total=60,
                forward=lossy_link(), reverse=lossy_link(), seed=5,
                max_time=100_000.0,
                fault_plan=FaultPlan(
                    forward_corruption=FrameCorruption(0.01),
                    crashes=(CrashRestart(at=at, outage=5.0,
                                          endpoint="sender"),),
                    seed=5,
                ),
            )

        assert with_plan(30.0).cache_key() != with_plan(40.0).cache_key()
        assert with_plan(30.0).cache_key() == with_plan(30.0).cache_key()

    def test_cache_key_is_the_description_digest(self):
        (config,) = make_grid(seeds=(1,))
        assert config.cache_key() == config_digest(config.description())


class TestDeterminism:
    def test_serial_matches_direct_execution(self):
        configs = make_grid()
        results = SweepRunner(jobs=1, cache=False).run(configs)
        direct = [execute_config(config) for config in configs]
        assert [serialize_result(r) for r in results] == [
            serialize_result(r) for r in direct
        ]

    def test_parallel_byte_identical_to_serial(self):
        configs = make_grid()
        serial = SweepRunner(jobs=1, cache=False).run(configs)
        parallel = SweepRunner(jobs=2, cache=False).run(make_grid())
        serial_json = [
            json.dumps(serialize_result(r), sort_keys=True) for r in serial
        ]
        parallel_json = [
            json.dumps(serialize_result(r), sort_keys=True) for r in parallel
        ]
        assert serial_json == parallel_json

    def test_results_come_back_in_config_order(self):
        seeds = (9, 2, 7, 0)
        results = SweepRunner(jobs=2, cache=False).run(make_grid(seeds=seeds))
        assert len(results) == len(seeds)
        # different seeds give different durations; re-running serially in
        # the same order must reproduce the exact sequence
        again = SweepRunner(jobs=1, cache=False).run(make_grid(seeds=seeds))
        assert [r.duration for r in results] == [r.duration for r in again]

    def test_serialize_round_trip(self):
        (config,) = make_grid(seeds=(3,))
        result = execute_config(config)
        clone = deserialize_result(serialize_result(result))
        assert clone.completed == result.completed
        assert clone.duration == result.duration
        assert clone.delivered == result.delivered
        assert clone.sender_stats == result.sender_stats
        assert clone.latencies == result.latencies


class TestCache:
    def test_cold_then_warm(self, tmp_path):
        configs = make_grid()
        cold = SweepRunner(jobs=1, cache=tmp_path)
        first = cold.run(configs)
        assert cold.executed == len(configs)
        assert cold.cached == 0

        warm = SweepRunner(jobs=1, cache=tmp_path)
        second = warm.run(make_grid())
        assert warm.executed == 0
        assert warm.cached == len(configs)
        assert [serialize_result(r) for r in first] == [
            serialize_result(r) for r in second
        ]

    def test_partial_hit_executes_only_missing(self, tmp_path):
        SweepRunner(jobs=1, cache=tmp_path).run(make_grid(seeds=(0, 1)))
        runner = SweepRunner(jobs=1, cache=tmp_path)
        runner.run(make_grid(seeds=(0, 1, 2)))
        assert runner.cached == 2
        assert runner.executed == 1

    def test_cache_disabled_by_default(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        runner = SweepRunner(jobs=1)
        runner.run(make_grid(seeds=(0,)))
        assert runner.cache is None

    def test_cache_files_are_versioned_json(self, tmp_path):
        SweepRunner(jobs=1, cache=tmp_path).run(make_grid(seeds=(0,)))
        files = list(tmp_path.glob("*.json"))
        assert len(files) == 1
        entry = json.loads(files[0].read_text())
        assert entry["version"] >= 1
        assert "result" in entry and "config" in entry

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        configs = make_grid(seeds=(0,))
        SweepRunner(jobs=1, cache=tmp_path).run(configs)
        (file,) = tmp_path.glob("*.json")
        file.write_text("not json{")
        runner = SweepRunner(jobs=1, cache=tmp_path)
        results = runner.run(make_grid(seeds=(0,)))
        assert runner.executed == 1
        assert results[0].completed

    def test_result_cache_counts_hits_and_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("deadbeef") is None
        cache.put("deadbeef", "desc", {"x": 1})
        assert cache.get("deadbeef") == {"x": 1}
        assert cache.hits == 1
        assert cache.misses == 1


class TestEnvKnobs:
    def test_default_jobs_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1

    def test_default_jobs_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert default_jobs() == 4

    def test_default_jobs_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError):
            default_jobs()

    def test_run_protocol_grid_honors_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_JOBS", "1")
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        results = run_protocol_grid(make_grid(seeds=(0,)))
        assert results[0].completed
        assert list(tmp_path.glob("*.json"))


class TestMonitorSummary:
    def test_monitor_survives_serialization(self):
        (config,) = make_grid(seeds=(2,))
        config.monitor_invariants = True
        result = deserialize_result(serialize_result(execute_config(config)))
        assert result.monitor is not None
        assert result.monitor.ok
        assert result.monitor.violations == []

    def test_no_monitor_stays_none(self):
        (config,) = make_grid(seeds=(2,))
        result = deserialize_result(serialize_result(execute_config(config)))
        assert result.monitor is None
