"""Tests for ASCII plotting and per-message latency metrics."""

import pytest

from repro.analysis.plot import ascii_plot, sparkline
from repro.channel.delay import ConstantDelay, UniformDelay
from repro.channel.impairments import BernoulliLoss
from repro.protocols.blockack import BlockAckReceiver, BlockAckSender
from repro.sim.runner import LinkSpec, run_transfer
from repro.workloads.sources import GreedySource


class TestAsciiPlot:
    def test_renders_grid_with_axes(self):
        plot = ascii_plot({"line": [(0, 0), (5, 5), (10, 10)]}, width=20, height=8)
        assert "│" in plot and "└" in plot
        assert "10" in plot  # axis bounds present
        assert "o line" in plot  # legend

    def test_multiple_series_distinct_markers(self):
        plot = ascii_plot(
            {"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]}, width=16, height=6
        )
        assert "o a" in plot and "* b" in plot

    def test_title_and_labels(self):
        plot = ascii_plot(
            {"s": [(0, 0), (1, 1)]}, title="T", x_label="xx", y_label="yy"
        )
        lines = plot.splitlines()
        assert lines[0] == "T"
        assert any("xx" in line for line in lines)
        assert any("yy" in line for line in lines)

    def test_flat_series_does_not_crash(self):
        plot = ascii_plot({"flat": [(0, 2.0), (1, 2.0)]}, width=10, height=5)
        assert "flat" in plot

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({"empty": []})

    def test_tiny_plot_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({"s": [(0, 0)]}, width=2, height=2)


class TestSparkline:
    def test_monotone_ramp(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line[0] == "▁" and line[-1] == "█"
        assert len(line) == 8

    def test_flat_values(self):
        assert sparkline([3, 3, 3]) == "▄▄▄"

    def test_empty(self):
        assert sparkline([]) == ""


class TestLatencyMetrics:
    def test_lossless_fifo_latency_is_one_way_delay(self):
        sender = BlockAckSender(8)
        receiver = BlockAckReceiver(8)
        result = run_transfer(
            sender, receiver, GreedySource(100),
            forward=LinkSpec(delay=ConstantDelay(1.0)),
            reverse=LinkSpec(delay=ConstantDelay(1.0)),
        )
        assert len(result.latencies) == 100
        assert result.mean_latency == pytest.approx(1.0)
        assert result.latency_percentile(99) == pytest.approx(1.0)

    def test_loss_inflates_tail_latency(self):
        def run(loss):
            sender = BlockAckSender(8, timeout_mode="per_message_safe")
            receiver = BlockAckReceiver(8)
            link = lambda: LinkSpec(
                delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(loss)
            )
            return run_transfer(
                sender, receiver, GreedySource(300),
                forward=link(), reverse=link(), seed=3, max_time=1e6,
            )

        clean = run(0.0)
        lossy = run(0.1)
        assert lossy.latency_percentile(99) > 2.0 * clean.latency_percentile(99)
        # medians stay comparable: most messages are never lost
        assert lossy.latency_percentile(50) < 3.0 * clean.latency_percentile(50)

    def test_head_of_line_blocking_visible(self):
        # in-order delivery makes buffered messages wait for gap fill:
        # reorder alone (no loss) already spreads the latency distribution
        sender = BlockAckSender(8)
        receiver = BlockAckReceiver(8)
        link = lambda: LinkSpec(delay=UniformDelay(0.1, 1.9))
        result = run_transfer(
            sender, receiver, GreedySource(300),
            forward=link(), reverse=link(), seed=4,
        )
        assert result.latency_percentile(95) > result.latency_percentile(50)

    def test_no_latencies_raises(self):
        from repro.sim.runner import TransferResult

        empty = TransferResult(
            completed=True, duration=1.0, delivered=0, submitted=0, in_order=True
        )
        with pytest.raises(ValueError):
            _ = empty.mean_latency
