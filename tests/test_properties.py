"""End-to-end property-based tests.

Hypothesis drives randomized channel conditions and protocol parameters;
the properties are the paper's correctness statements:

* **safety** — every completed transfer delivers each payload exactly
  once, in order, regardless of loss rate, jitter, window size, numbering
  mode, or ack policy;
* **invariance** — the abstract model's invariant survives arbitrary
  fair executions (complementing the exhaustive checks of E8 with deeper
  random ones);
* **equivalence** — bounded and unbounded variants remain behaviourally
  identical under randomized conditions.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.channel.delay import UniformDelay
from repro.channel.impairments import BernoulliLoss
from repro.core.numbering import ModularNumbering
from repro.protocols.ack_policy import DelayedAckPolicy, EagerAckPolicy
from repro.protocols.blockack import BlockAckReceiver, BlockAckSender
from repro.protocols.blockack_bounded import (
    BoundedBlockAckReceiver,
    BoundedBlockAckSender,
)
from repro.sim.runner import LinkSpec, run_transfer
from repro.verify.actions import AbstractProtocolModel
from repro.verify.explorer import RandomWalker
from repro.workloads.sources import GreedySource


@settings(max_examples=25, deadline=None)
@given(
    window=st.integers(min_value=1, max_value=12),
    loss=st.floats(min_value=0.0, max_value=0.25),
    spread=st.floats(min_value=0.0, max_value=1.8),
    seed=st.integers(min_value=0, max_value=10**6),
    mode=st.sampled_from(["simple", "per_message_safe"]),
    bounded=st.booleans(),
)
def test_transfer_safety_property(window, loss, spread, seed, mode, bounded):
    """Exactly-once in-order delivery under arbitrary conditions."""
    numbering = ModularNumbering(window) if bounded else None
    sender = BlockAckSender(window, numbering=numbering, timeout_mode=mode)
    receiver = BlockAckReceiver(window, numbering=numbering)
    low = max(0.0, 1.0 - spread / 2)
    link = lambda: LinkSpec(
        delay=UniformDelay(low, 1.0 + spread / 2),
        loss=BernoulliLoss(loss),
    )
    result = run_transfer(
        sender, receiver, GreedySource(60),
        forward=link(), reverse=link(), seed=seed,
        collect_payloads=True, max_time=1_000_000.0,
    )
    assert result.completed
    assert result.delivered_payloads == [("msg", i) for i in range(60)]


@settings(max_examples=25, deadline=None)
@given(
    window=st.integers(min_value=1, max_value=4),
    max_send=st.integers(min_value=1, max_value=12),
    loss_p=st.floats(min_value=0.0, max_value=0.4),
    budget=st.integers(min_value=0, max_value=25),
    seed=st.integers(min_value=0, max_value=10**6),
    mode=st.sampled_from(["simple", "per_message"]),
)
def test_abstract_model_walk_property(window, max_send, loss_p, budget, seed, mode):
    """Random fair executions: invariant holds, transfer completes."""
    model = AbstractProtocolModel(
        window=window, max_send=max_send, timeout_mode=mode, allow_loss=True
    )
    walker = RandomWalker(
        model, random.Random(seed), loss_probability=loss_p, loss_budget=budget
    )
    report = walker.run()
    assert report.invariant_violations == 0
    assert report.completed


@settings(max_examples=15, deadline=None)
@given(
    window=st.integers(min_value=1, max_value=8),
    loss=st.floats(min_value=0.0, max_value=0.15),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_bounded_unbounded_equivalence_property(window, loss, seed):
    """Section V equivalence under randomized channels (simple timeout)."""

    def run_one(sender, receiver):
        link = lambda: LinkSpec(
            delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(loss)
        )
        return run_transfer(
            sender, receiver, GreedySource(40),
            forward=link(), reverse=link(), seed=seed,
            collect_payloads=True, max_time=1_000_000.0,
        )

    reference = run_one(
        BlockAckSender(window, timeout_mode="simple"),
        BlockAckReceiver(window, ack_policy=EagerAckPolicy()),
    )
    bounded = run_one(
        BoundedBlockAckSender(window),
        BoundedBlockAckReceiver(window, ack_policy=EagerAckPolicy()),
    )
    assert reference.completed and bounded.completed
    assert bounded.delivered_payloads == reference.delivered_payloads
    assert bounded.duration == reference.duration
    assert bounded.sender_stats["data_sent"] == reference.sender_stats["data_sent"]


@settings(max_examples=15, deadline=None)
@given(
    delay=st.floats(min_value=0.0, max_value=2.0),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_ack_batching_never_breaks_safety(delay, seed):
    """Any bounded ack-policy latency preserves correctness."""
    sender = BlockAckSender(8, timeout_mode="per_message_safe")
    receiver = BlockAckReceiver(8, ack_policy=DelayedAckPolicy(delay))
    link = lambda: LinkSpec(delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(0.08))
    result = run_transfer(
        sender, receiver, GreedySource(50),
        forward=link(), reverse=link(), seed=seed, max_time=1_000_000.0,
    )
    assert result.completed and result.in_order
