"""Refinement tests: timed traces replay as abstract-spec executions."""

import pytest

from repro.trace.events import EventKind, TraceEvent
from repro.verify.refinement import check_refinement, replay_trace


def ev(kind, seq=None, seq_hi=None, t=0.0, actor="x"):
    return TraceEvent(time=t, actor=actor, kind=kind, seq=seq, seq_hi=seq_hi)


class TestTimedModesRefineTheSpec:
    @pytest.mark.parametrize("mode", ["simple", "per_message_safe", "oracle"])
    def test_safe_modes_refine(self, mode):
        report = check_refinement(
            window=6, total=150, seed=3, timeout_mode=mode
        )
        assert report.ok, report.summary() + "\n" + "\n".join(
            report.errors + report.invariant_violations
        )
        assert report.steps > 150  # sends + receptions + acks at minimum

    @pytest.mark.parametrize("seed", [1, 2, 5, 8])
    def test_refinement_across_seeds(self, seed):
        report = check_refinement(
            window=5, total=120, seed=seed, timeout_mode="per_message_safe",
            loss=0.12, spread=1.5,
        )
        assert report.ok, "\n".join(report.errors[:5])

    def test_lossless_run_refines(self):
        report = check_refinement(
            window=8, total=100, seed=0, timeout_mode="simple", loss=0.0,
            spread=0.0,
        )
        assert report.ok

    def test_aggressive_mode_violates_the_guard(self):
        report = check_refinement(
            window=6, total=200, seed=3, timeout_mode="aggressive"
        )
        assert not report.ok
        assert any("buffered at the receiver" in error for error in report.errors)

    def test_final_state_is_quiescent(self):
        report = check_refinement(
            window=4, total=60, seed=4, timeout_mode="per_message_safe"
        )
        assert report.ok
        state = report.final_state
        assert state.na == state.ns == state.nr == state.vr == 60
        assert state.c_sr == () and state.c_rs == ()


class TestReplayerGuards:
    def test_clean_exchange_replays(self):
        events = [
            ev(EventKind.SEND_DATA, seq=0),
            ev(EventKind.RECV_DATA, seq=0),
            ev(EventKind.SEND_ACK, seq=0, seq_hi=0),
            ev(EventKind.RECV_ACK, seq=0, seq_hi=0),
        ]
        report = replay_trace(events, window=4)
        assert report.ok
        assert report.final_state.na == 1

    def test_out_of_order_send_rejected(self):
        report = replay_trace([ev(EventKind.SEND_DATA, seq=3)], window=4)
        assert not report.ok

    def test_window_overflow_rejected(self):
        events = [ev(EventKind.SEND_DATA, seq=i) for i in range(3)]
        report = replay_trace(events, window=2)
        assert any("window full" in error for error in report.errors)

    def test_reception_of_never_sent_data_rejected(self):
        report = replay_trace([ev(EventKind.RECV_DATA, seq=0)], window=4)
        assert any("not in C_SR" in error for error in report.errors)

    def test_premature_retransmission_rejected(self):
        events = [
            ev(EventKind.SEND_DATA, seq=0),
            ev(EventKind.RESEND_DATA, seq=0),  # copy still in C_SR
        ]
        report = replay_trace(events, window=4)
        assert any("still in C_SR" in error for error in report.errors)

    def test_legal_retransmission_after_loss(self):
        events = [
            ev(EventKind.SEND_DATA, seq=0),
            ev(EventKind.DROP, seq=0),
            ev(EventKind.RESEND_DATA, seq=0),
            ev(EventKind.RECV_DATA, seq=0),
            ev(EventKind.SEND_ACK, seq=0, seq_hi=0),
            ev(EventKind.RECV_ACK, seq=0, seq_hi=0),
        ]
        report = replay_trace(events, window=4)
        assert report.ok

    def test_wrong_ack_block_rejected(self):
        events = [
            ev(EventKind.SEND_DATA, seq=0),
            ev(EventKind.RECV_DATA, seq=0),
            ev(EventKind.SEND_ACK, seq=0, seq_hi=1),  # 1 was never received
        ]
        report = replay_trace(events, window=4)
        assert any("actions 4+5" in error for error in report.errors)

    def test_duplicate_must_emit_dup_ack(self):
        events = [
            ev(EventKind.SEND_DATA, seq=0),
            ev(EventKind.RECV_DATA, seq=0),
            ev(EventKind.SEND_ACK, seq=0, seq_hi=0),
            ev(EventKind.DROP, seq=0, seq_hi=0),  # the ack is lost
            ev(EventKind.RESEND_DATA, seq=0),
            ev(EventKind.RECV_DATA, seq=0),  # duplicate, but no RESEND_ACK
        ]
        report = replay_trace(events, window=4)
        assert any("without a (v,v) ack" in error for error in report.errors)

    def test_duplicate_with_dup_ack_accepted(self):
        events = [
            ev(EventKind.SEND_DATA, seq=0),
            ev(EventKind.RECV_DATA, seq=0),
            ev(EventKind.SEND_ACK, seq=0, seq_hi=0),
            ev(EventKind.DROP, seq=0, seq_hi=0),
            ev(EventKind.RESEND_DATA, seq=0),
            ev(EventKind.RECV_DATA, seq=0),
            ev(EventKind.RESEND_ACK, seq=0, seq_hi=0),
            ev(EventKind.RECV_ACK, seq=0, seq_hi=0),
        ]
        report = replay_trace(events, window=4)
        assert report.ok
        assert report.final_state.na == 1

    def test_phantom_ack_reception_rejected(self):
        report = replay_trace(
            [ev(EventKind.RECV_ACK, seq=0, seq_hi=0)], window=4
        )
        assert any("not in C_RS" in error for error in report.errors)
