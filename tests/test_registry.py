"""Tests for the protocol registry."""

import pytest

from repro.protocols.base import ReceiverEndpoint, SenderEndpoint
from repro.protocols.registry import PROTOCOLS, make_pair, protocol_names
from repro.sim.runner import run_transfer
from repro.workloads.sources import GreedySource


class TestRegistry:
    def test_names_stable(self):
        assert protocol_names() == list(PROTOCOLS)
        assert "blockack" in protocol_names()
        assert "gobackn" in protocol_names()

    def test_every_factory_builds_endpoint_pair(self):
        for name in protocol_names():
            sender, receiver = make_pair(name, window=4)
            assert isinstance(sender, SenderEndpoint)
            assert isinstance(receiver, ReceiverEndpoint)

    def test_every_protocol_completes_a_transfer(self):
        for name in protocol_names():
            sender, receiver = make_pair(name, window=4)
            result = run_transfer(
                sender, receiver, GreedySource(60), seed=1, max_time=50_000.0
            )
            assert result.completed and result.in_order, name

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(KeyError, match="blockack"):
            make_pair("nonsense", window=4)

    def test_blockack_bounded_wire_flag(self):
        sender, receiver = make_pair("blockack", window=4, bounded_wire=True)
        assert sender.numbering.domain_size == 8
        assert receiver.numbering.domain_size == 8

    def test_stenning_domain_kwarg(self):
        sender, receiver = make_pair("stenning", window=4, domain=20)
        assert sender.domain == 20
        assert receiver.domain == 20

    def test_timeout_period_passthrough(self):
        sender, _ = make_pair("gobackn", window=4, timeout_period=7.5)
        assert sender.timeout_period == 7.5

    def test_extra_kwargs_tolerated(self):
        # sweep harnesses pass a superset of kwargs; factories must not choke
        sender, _ = make_pair("gobackn", window=4, bounded_wire=True)
        assert sender.w == 4
