"""Unit and integration tests for the adaptive-retransmission layer.

Covers the :mod:`repro.robustness` building blocks (RTT estimation,
backoff, retry budget, the controller binding them) and the end-to-end
behavior of senders running with ``adaptive=``: correctness under loss,
graceful degradation, and the link-dead verdict on a black-holed channel.
"""

import pytest

from repro.channel.impairments import BernoulliLoss
from repro.experiments.common import lossy_link
from repro.protocols.registry import make_pair
from repro.robustness.backoff import BackoffPolicy
from repro.robustness.budget import RetryBudget, RetryVerdict
from repro.robustness.controller import AdaptiveConfig, RetransmissionController
from repro.robustness.rtt import RttEstimator
from repro.sim.runner import LinkSpec, run_transfer
from repro.workloads.sources import GreedySource


class TestRttEstimator:
    def test_initial_rto_before_any_sample(self):
        assert RttEstimator(initial_rto=3.0).rto == 3.0

    def test_first_sample_initializes_rfc6298(self):
        est = RttEstimator(initial_rto=10.0)
        est.sample(2.0)
        assert est.srtt == 2.0
        assert est.rttvar == 1.0  # s/2
        assert est.rto == 2.0 + 4.0 * 1.0

    def test_ewma_update(self):
        est = RttEstimator(initial_rto=10.0, alpha=0.5, beta=0.5, k=1.0)
        est.sample(2.0)
        est.sample(4.0)
        # rttvar: 1 + 0.5*(|2-4| - 1) = 1.5 ; srtt: 2 + 0.5*(4-2) = 3
        assert est.rttvar == pytest.approx(1.5)
        assert est.srtt == pytest.approx(3.0)
        assert est.rto == pytest.approx(3.0 + 1.5)

    def test_converges_toward_stable_rtt(self):
        est = RttEstimator(initial_rto=50.0)
        for _ in range(200):
            est.sample(2.0)
        assert est.srtt == pytest.approx(2.0)
        assert est.rto == pytest.approx(2.0, abs=0.01)  # variance decays

    def test_min_rto_floor(self):
        est = RttEstimator(initial_rto=5.0, min_rto=3.0)
        for _ in range(50):
            est.sample(0.1)
        assert est.rto == 3.0

    def test_max_rto_cap(self):
        est = RttEstimator(initial_rto=5.0, max_rto=6.0)
        est.sample(100.0)
        assert est.rto == 6.0

    def test_reset_forgets_samples(self):
        est = RttEstimator(initial_rto=7.0)
        est.sample(1.0)
        est.reset()
        assert est.samples == 0
        assert est.rto == 7.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RttEstimator(initial_rto=0.0)
        with pytest.raises(ValueError):
            RttEstimator(initial_rto=1.0, alpha=1.5)
        with pytest.raises(ValueError):
            RttEstimator(initial_rto=1.0, min_rto=5.0, max_rto=2.0)
        with pytest.raises(ValueError):
            RttEstimator(initial_rto=1.0).sample(-1.0)


class TestBackoffPolicy:
    def test_exponential_growth(self):
        policy = BackoffPolicy(multiplier=2.0, cap=100.0)
        assert [policy.factor(n) for n in range(4)] == [1.0, 2.0, 4.0, 8.0]

    def test_cap(self):
        policy = BackoffPolicy(multiplier=2.0, cap=8.0)
        assert policy.factor(10) == 8.0

    def test_jitter_bounded_and_deterministic(self):
        import random

        a = BackoffPolicy(jitter=0.25, rng=random.Random(7))
        b = BackoffPolicy(jitter=0.25, rng=random.Random(7))
        factors = [a.factor(1) for _ in range(20)]
        assert factors == [b.factor(1) for _ in range(20)]  # seeded stream
        assert all(2.0 <= f <= 2.0 * 1.25 for f in factors)

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            BackoffPolicy().factor(-1)


class TestRetryBudget:
    def test_escalation_sequence(self):
        budget = RetryBudget(degrade_after=2, dead_after=5)
        verdicts = [budget.on_timeout() for _ in range(5)]
        assert verdicts == [
            RetryVerdict.RETRY,
            RetryVerdict.DEGRADE,  # run = 2
            RetryVerdict.RETRY,
            RetryVerdict.DEGRADE,  # run = 4
            RetryVerdict.LINK_DEAD,  # run = 5
        ]
        assert budget.exhausted

    def test_progress_resets_run(self):
        budget = RetryBudget(degrade_after=3, dead_after=6)
        budget.on_timeout()
        budget.on_timeout()
        budget.on_progress()
        assert budget.consecutive == 0
        # a healthy link never degrades
        assert budget.on_timeout() is RetryVerdict.RETRY

    def test_total_timeouts_survive_progress(self):
        budget = RetryBudget()
        budget.on_timeout()
        budget.on_progress()
        budget.on_timeout()
        assert budget.total_timeouts == 2

    def test_reset_clears_exhaustion(self):
        budget = RetryBudget(degrade_after=1, dead_after=1)
        assert budget.on_timeout() is RetryVerdict.LINK_DEAD
        budget.reset()
        assert not budget.exhausted
        assert budget.consecutive == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryBudget(degrade_after=0)
        with pytest.raises(ValueError):
            RetryBudget(degrade_after=5, dead_after=3)


class TestRetransmissionController:
    def make(self, **overrides):
        config = AdaptiveConfig(**overrides)
        return config.build(fallback_rto=4.0)

    def test_initial_period_is_fallback(self):
        assert self.make().period() == 4.0

    def test_period_backs_off_per_key(self):
        retx = self.make()
        retx.on_timeout(7)
        retx.on_timeout(7)
        assert retx.period(7) == 4.0 * 4.0  # two expiries -> x4
        assert retx.period(8) == 4.0  # other keys unaffected

    def test_ack_resets_backoff_and_budget(self):
        retx = self.make()
        retx.on_timeout(7)
        retx.on_ack([7], now=10.0)
        assert retx.period(7) == 4.0
        assert retx.budget.consecutive == 0

    def test_rtt_sampled_from_clean_send(self):
        retx = self.make()
        retx.on_send(1, now=0.0, retransmit=False)
        retx.on_ack([1], now=2.0)
        assert retx.estimator.samples == 1
        assert retx.estimator.srtt == 2.0

    def test_karns_rule_discards_retransmitted_samples(self):
        retx = self.make()
        retx.on_send(1, now=0.0, retransmit=False)
        retx.on_send(1, now=5.0, retransmit=True)  # tainted
        retx.on_ack([1], now=6.0)  # ambiguous: which copy answered?
        assert retx.estimator.samples == 0

    def test_min_rto_floor_defaults_to_fallback(self):
        retx = self.make()
        for _ in range(50):
            retx.on_send(1, now=0.0, retransmit=False)
            retx.on_ack([1], now=0.01)  # rtt far below the safe period
        assert retx.period() >= 4.0  # adaptivity only lengthens timers

    def test_link_dead_verdict(self):
        retx = self.make(dead_after=3, degrade_after=3)
        retx.on_timeout()
        retx.on_timeout()
        assert retx.on_timeout() is RetryVerdict.LINK_DEAD
        assert retx.link_dead
        assert retx.verdict == "dead"

    def test_link_dead_records_triggering_key_and_time(self):
        retx = self.make(dead_after=3, degrade_after=3)
        retx.on_timeout(7, now=10.0)
        retx.on_timeout(7, now=11.0)
        assert retx.on_timeout(7, now=12.5) is RetryVerdict.LINK_DEAD
        assert retx.dead_key == 7 and retx.dead_at == 12.5
        # later expiries never overwrite the first culprit
        retx.on_timeout(9, now=20.0)
        assert retx.dead_key == 7 and retx.dead_at == 12.5
        stats = retx.stats_dict()
        assert stats["dead_key"] == 7 and stats["dead_at"] == 12.5

    def test_link_dead_labels_reach_the_metrics_registry(self):
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.session import ControllerInstruments

        registry = MetricsRegistry(name="test")
        retx = self.make(dead_after=3, degrade_after=3)
        retx.bind_instruments(ControllerInstruments(registry))
        for now in (10.0, 11.0, 12.5):
            retx.on_timeout(7, now=now)
        snapshot = registry.snapshot()
        samples = snapshot["link_dead_declared_total"]["samples"]
        assert samples == [
            {"labels": {"seq": "7", "at": "12.5"}, "value": 1}
        ]

    def test_reset_volatile(self):
        retx = self.make()
        retx.on_send(1, now=0.0, retransmit=False)
        retx.on_timeout(1)
        retx.reset_volatile()
        assert retx.period(1) == 4.0
        retx.on_ack([1], now=9.0)
        assert retx.estimator.samples == 0  # pre-crash send time forgotten

    def test_stats_dict_keys(self):
        stats = self.make().stats_dict()
        assert set(stats) == {
            "rto", "srtt", "rttvar", "rtt_samples", "degrades",
            "budget_timeouts", "verdict", "dead_key", "dead_at",
        }

    def test_config_requires_some_rto(self):
        with pytest.raises(ValueError):
            AdaptiveConfig().build(fallback_rto=None)

    def test_degrade_factor_validated(self):
        with pytest.raises(ValueError):
            AdaptiveConfig(degrade_factor=0.0)


PROTOCOLS_WITH_ADAPTIVE = [
    ("blockack", {"timeout_mode": "simple"}),
    ("blockack", {"timeout_mode": "per_message_safe"}),
    ("blockack-bounded", {}),
    ("gobackn", {}),
    ("selective-repeat", {}),
]


class TestAdaptiveEndToEnd:
    @pytest.mark.parametrize("name,kwargs", PROTOCOLS_WITH_ADAPTIVE)
    def test_lossy_transfer_completes_in_order(self, name, kwargs):
        sender, receiver = make_pair(
            name, window=4, adaptive=AdaptiveConfig(), **kwargs
        )
        result = run_transfer(
            sender,
            receiver,
            GreedySource(120),
            forward=lossy_link(0.05),
            reverse=lossy_link(0.05),
            seed=3,
            max_time=20_000.0,
        )
        assert result.completed and result.in_order
        assert result.sender_stats["adaptive"]["rtt_samples"] > 0
        assert result.sender_stats["link_dead"] is False

    def test_adaptive_keeps_invariants_under_loss(self):
        sender, receiver = make_pair(
            "blockack",
            window=6,
            timeout_mode="per_message_safe",
            adaptive=AdaptiveConfig(),
        )
        result = run_transfer(
            sender,
            receiver,
            GreedySource(150),
            forward=lossy_link(0.1),
            reverse=lossy_link(0.1),
            seed=11,
            max_time=20_000.0,
            monitor_invariants=True,
        )
        assert result.completed and result.in_order
        assert result.monitor.violations == []

    def test_black_hole_degrades_then_declares_link_dead(self):
        sender, receiver = make_pair(
            "blockack",
            window=8,
            timeout_mode="simple",
            adaptive=AdaptiveConfig(degrade_after=3, dead_after=9),
        )
        black_hole = LinkSpec(loss=BernoulliLoss(1.0))
        result = run_transfer(
            sender,
            receiver,
            GreedySource(20),
            forward=black_hole,
            reverse=LinkSpec(),
            seed=1,
            max_time=100_000.0,
        )
        assert not result.completed
        assert sender.link_dead
        assert result.sender_stats["link_dead"] is True
        assert result.sender_stats["adaptive"]["verdict"] == "dead"
        # the verdict pins down which expiry killed the link and when
        assert result.sender_stats["adaptive"]["dead_at"] is not None
        # degraded in steps before giving up: w = 8 -> 4 -> 2
        assert sender.window.w < 8
        assert result.sender_stats["adaptive"]["degrades"] == 2
        # the budget stopped the retry loop at the hard limit
        assert result.sender_stats["timeouts_fired"] == 9
        # ... and the simulation drained instead of retrying forever
        assert result.duration < 100_000.0

    def test_backoff_spaces_out_retries(self):
        def timeouts_at(config):
            sender, receiver = make_pair(
                "blockack", window=2, timeout_mode="simple", adaptive=config
            )
            result = run_transfer(
                sender,
                receiver,
                GreedySource(5),
                forward=LinkSpec(loss=BernoulliLoss(1.0)),
                reverse=LinkSpec(),
                seed=1,
                max_time=400.0,
            )
            return result.sender_stats["timeouts_fired"]

        # same budget, same horizon: exponential backoff fires fewer
        # timeouts than flat retries before the cutoff
        flat = timeouts_at(AdaptiveConfig(backoff_multiplier=1.0, dead_after=50))
        backed_off = timeouts_at(AdaptiveConfig(dead_after=50))
        assert backed_off < flat

    def test_adaptive_none_is_the_default(self):
        sender, _ = make_pair("blockack", window=4)
        assert sender.adaptive is None
        assert sender._retx is None
