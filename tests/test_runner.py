"""Tests for the transfer harness."""

import pytest

from repro.channel.delay import ConstantDelay, ExponentialDelay, UniformDelay
from repro.channel.impairments import BernoulliLoss
from repro.protocols.ack_policy import DelayedAckPolicy
from repro.protocols.blockack import BlockAckReceiver, BlockAckSender
from repro.sim.runner import LinkSpec, run_transfer
from repro.workloads.sources import GreedySource


class TestTimeoutDerivation:
    def test_derives_from_bounded_channels(self):
        sender = BlockAckSender(4)
        receiver = BlockAckReceiver(4)
        result = run_transfer(
            sender, receiver, GreedySource(10),
            forward=LinkSpec(delay=UniformDelay(0.5, 1.5)),
            reverse=LinkSpec(delay=ConstantDelay(1.0)),
        )
        # 1.5 (fwd max) + 0 (eager acks) + 1.0 (rev max) + 0.05 margin
        assert result.timeout_period == pytest.approx(2.55)

    def test_ack_policy_latency_included(self):
        sender = BlockAckSender(4)
        receiver = BlockAckReceiver(4, ack_policy=DelayedAckPolicy(0.5))
        result = run_transfer(sender, receiver, GreedySource(10))
        assert result.timeout_period == pytest.approx(1.0 + 0.5 + 1.0 + 0.05)

    def test_explicit_period_respected(self):
        sender = BlockAckSender(4, timeout_period=9.0)
        receiver = BlockAckReceiver(4)
        result = run_transfer(sender, receiver, GreedySource(10))
        assert result.timeout_period == 9.0

    def test_unbounded_channel_without_aging_rejected(self):
        sender = BlockAckSender(4)
        receiver = BlockAckReceiver(4)
        with pytest.raises(ValueError, match="aging"):
            run_transfer(
                sender, receiver, GreedySource(10),
                forward=LinkSpec(delay=ExponentialDelay(1.0)),
            )

    def test_aging_restores_derivability(self):
        sender = BlockAckSender(4)
        receiver = BlockAckReceiver(4)
        result = run_transfer(
            sender, receiver, GreedySource(30),
            forward=LinkSpec(delay=ExponentialDelay(0.3), max_lifetime=5.0),
            reverse=LinkSpec(delay=ExponentialDelay(0.3), max_lifetime=5.0),
            seed=1,
        )
        assert result.completed and result.in_order
        assert result.timeout_period == pytest.approx(10.05)

    def test_reverse_lifetime_filled_in(self):
        sender = BlockAckSender(4, timeout_mode="per_message_safe")
        receiver = BlockAckReceiver(4)
        run_transfer(
            sender, receiver, GreedySource(10),
            reverse=LinkSpec(delay=UniformDelay(0.5, 2.5)),
        )
        assert sender.reverse_lifetime == pytest.approx(2.55)


class TestResultFields:
    def test_summary_strings(self):
        sender = BlockAckSender(4)
        receiver = BlockAckReceiver(4)
        result = run_transfer(sender, receiver, GreedySource(10))
        assert "completed" in result.summary()
        assert "in-order" in result.summary()

    def test_collect_payloads(self):
        sender = BlockAckSender(4)
        receiver = BlockAckReceiver(4)
        result = run_transfer(
            sender, receiver, GreedySource(5), collect_payloads=True
        )
        assert result.delivered_payloads == [("msg", i) for i in range(5)]

    def test_trace_disabled_by_default(self):
        sender = BlockAckSender(4)
        receiver = BlockAckReceiver(4)
        result = run_transfer(sender, receiver, GreedySource(5))
        assert result.trace is None

    def test_incomplete_on_max_time(self):
        sender = BlockAckSender(2)
        receiver = BlockAckReceiver(2)
        result = run_transfer(
            sender, receiver, GreedySource(1000), max_time=5.0
        )
        assert not result.completed
        assert result.delivered < 1000

    def test_channel_stats_included(self):
        sender = BlockAckSender(4)
        receiver = BlockAckReceiver(4)
        result = run_transfer(
            sender, receiver, GreedySource(50),
            forward=LinkSpec(loss=BernoulliLoss(0.1)),
            seed=2,
        )
        assert result.forward_stats["lost"] > 0
        assert result.forward_stats["sent"] > 50

    def test_throughput_and_efficiency_derivations(self):
        sender = BlockAckSender(4)
        receiver = BlockAckReceiver(4)
        result = run_transfer(sender, receiver, GreedySource(40))
        assert result.throughput == pytest.approx(40 / result.duration)
        assert result.goodput_efficiency == 1.0


class TestSubmitRestore:
    """run_transfer wraps sender.submit for latency timing; the wrapper
    must not outlive the call (regression: wrappers used to stack)."""

    def test_submit_not_left_in_instance_dict(self):
        sender = BlockAckSender(4)
        receiver = BlockAckReceiver(4)
        run_transfer(sender, receiver, GreedySource(10))
        assert "submit" not in vars(sender)
        assert sender.submit.__func__ is BlockAckSender.submit

    def test_rerun_does_not_stack_wrappers(self):
        sender = BlockAckSender(4)
        receiver = BlockAckReceiver(4)
        for _ in range(3):
            run_transfer(sender, receiver, GreedySource(0))
        result = run_transfer(sender, receiver, GreedySource(10))
        # a stacked wrapper would double-record submissions
        assert len(result.latencies) == 10
        assert "submit" not in vars(sender)

    def test_restored_after_failed_run(self):
        sender = BlockAckSender(2)
        receiver = BlockAckReceiver(2)
        result = run_transfer(
            sender, receiver, GreedySource(1000), max_time=5.0
        )
        assert not result.completed
        assert "submit" not in vars(sender)

    def test_preexisting_instance_attribute_restored(self):
        sender = BlockAckSender(4)
        receiver = BlockAckReceiver(4)
        calls = []
        real_submit = sender.submit

        def counting_submit(payload):
            calls.append(payload)
            return real_submit(payload)

        sender.submit = counting_submit
        run_transfer(sender, receiver, GreedySource(10))
        assert sender.submit is counting_submit
        assert len(calls) == 10
