"""Tests for the runtime invariant monitor."""

import pytest

from repro.channel.delay import ConstantDelay, UniformDelay
from repro.channel.impairments import BernoulliLoss
from repro.core.numbering import ModularNumbering
from repro.protocols.blockack import BlockAckReceiver, BlockAckSender
from repro.protocols.blockack_bounded import (
    BoundedBlockAckReceiver,
    BoundedBlockAckSender,
)
from repro.sim.runner import LinkSpec, run_transfer
from repro.workloads.sources import GreedySource


def adversarial_link():
    return LinkSpec(delay=UniformDelay(0.3, 1.7), loss=BernoulliLoss(0.12))


class TestCleanConfigurations:
    @pytest.mark.parametrize("mode", ["simple", "per_message_safe"])
    def test_safe_timer_modes_stay_clean(self, mode):
        numbering = ModularNumbering(6)
        sender = BlockAckSender(6, numbering=numbering, timeout_mode=mode)
        receiver = BlockAckReceiver(6, numbering=numbering)
        result = run_transfer(
            sender, receiver, GreedySource(300),
            forward=adversarial_link(), reverse=adversarial_link(),
            seed=3, monitor_invariants=True, max_time=1_000_000.0,
        )
        assert result.completed and result.in_order
        assert result.monitor.clean, result.monitor.report()

    def test_unbounded_numbering_clean(self):
        sender = BlockAckSender(6, timeout_mode="per_message_safe")
        receiver = BlockAckReceiver(6)
        result = run_transfer(
            sender, receiver, GreedySource(300),
            forward=adversarial_link(), reverse=adversarial_link(),
            seed=4, monitor_invariants=True, max_time=1_000_000.0,
        )
        assert result.monitor.clean

    def test_bounded_endpoints_clean(self):
        sender = BoundedBlockAckSender(6)
        receiver = BoundedBlockAckReceiver(6)
        result = run_transfer(
            sender, receiver, GreedySource(300),
            forward=adversarial_link(), reverse=adversarial_link(),
            seed=5, monitor_invariants=True, max_time=1_000_000.0,
        )
        assert result.completed and result.in_order
        assert result.monitor.clean

    def test_position_reuse_clean(self):
        numbering = ModularNumbering(6, lookahead=2)
        sender = BlockAckSender(
            6, numbering=numbering, timeout_mode="per_message_safe", lookahead=2
        )
        receiver = BlockAckReceiver(6, numbering=numbering)
        result = run_transfer(
            sender, receiver, GreedySource(250),
            forward=adversarial_link(), reverse=adversarial_link(),
            seed=6, monitor_invariants=True, max_time=1_000_000.0,
        )
        assert result.completed and result.in_order
        assert result.monitor.clean

    def test_monitor_absent_by_default(self):
        sender = BlockAckSender(4)
        receiver = BlockAckReceiver(4)
        result = run_transfer(sender, receiver, GreedySource(10))
        assert result.monitor is None


class TestViolationDetection:
    def test_premature_aggressive_timers_flagged(self):
        numbering = ModularNumbering(6)
        sender = BlockAckSender(
            6, numbering=numbering, timeout_mode="aggressive",
            timeout_period=1.0,  # far below the safe bound
        )
        receiver = BlockAckReceiver(6, numbering=numbering)
        result = run_transfer(
            sender, receiver, GreedySource(100),
            forward=adversarial_link(), reverse=adversarial_link(),
            seed=3, monitor_invariants=True, max_time=5_000.0,
        )
        assert not result.monitor.clean
        clauses = {v.clause for v in result.monitor.violations}
        assert any("8" in clause for clause in clauses)

    def test_premature_simple_timer_flagged(self):
        sender = BlockAckSender(
            4, timeout_mode="simple", timeout_period=0.5
        )
        receiver = BlockAckReceiver(4)
        result = run_transfer(
            sender, receiver, GreedySource(50),
            forward=LinkSpec(delay=ConstantDelay(1.0), loss=BernoulliLoss(0.2)),
            reverse=LinkSpec(delay=ConstantDelay(1.0), loss=BernoulliLoss(0.2)),
            seed=7, monitor_invariants=True, max_time=5_000.0,
        )
        assert not result.monitor.clean

    def test_report_format(self):
        sender = BlockAckSender(4, timeout_mode="simple", timeout_period=0.5)
        receiver = BlockAckReceiver(4)
        result = run_transfer(
            sender, receiver, GreedySource(50),
            forward=LinkSpec(delay=ConstantDelay(1.0), loss=BernoulliLoss(0.2)),
            reverse=LinkSpec(delay=ConstantDelay(1.0), loss=BernoulliLoss(0.2)),
            seed=7, monitor_invariants=True, max_time=5_000.0,
        )
        report = result.monitor.report(limit=2)
        assert "violation" in report
        assert "t=" in report

    def test_strict_mode_raises(self, sim):
        from repro.channel.channel import Channel
        from repro.core.messages import DataMessage
        from repro.verify.runtime import InvariantMonitor

        forward = Channel(sim, delay=ConstantDelay(5.0))
        reverse = Channel(sim, delay=ConstantDelay(5.0))
        forward.connect(lambda m: None)
        reverse.connect(lambda m: None)
        monitor = InvariantMonitor(None, None, forward, reverse, strict=True)
        forward.send(DataMessage(0))
        with pytest.raises(AssertionError):
            forward.send(DataMessage(0))  # second copy of the same number
