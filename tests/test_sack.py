"""Tests for the TCP-SACK-style baseline."""

import pytest

from repro.channel.delay import ConstantDelay, UniformDelay
from repro.channel.impairments import BernoulliLoss, ScriptedLoss
from repro.protocols.sack import (
    DUP_ACK_THRESHOLD,
    SackAck,
    SackReceiver,
    SackSender,
)
from repro.sim.runner import LinkSpec, run_transfer
from repro.trace.events import EventKind
from repro.workloads.sources import GreedySource


def run_sack(total=200, w=8, forward=None, reverse=None, seed=0, trace=False):
    return run_transfer(
        SackSender(w), SackReceiver(w), GreedySource(total),
        forward=forward, reverse=reverse, seed=seed, trace=trace,
        max_time=500_000.0,
    )


class TestSackAckMessage:
    def test_str(self):
        assert "cum=4" in str(SackAck(cum=4, blocks=((6, 8),)))

    def test_empty_blocks_default(self):
        assert SackAck(cum=0).blocks == ()


class TestTransferBehaviour:
    def test_lossless_in_order(self):
        result = run_sack()
        assert result.completed and result.in_order

    def test_lossless_parity_with_pipelining_bound(self):
        result = run_sack(total=400, w=8)
        assert abs(result.throughput - 4.0) < 0.2

    def test_loss_recovery(self):
        link = lambda: LinkSpec(
            delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(0.1)
        )
        result = run_sack(forward=link(), reverse=link(), seed=3)
        assert result.completed and result.in_order

    def test_heavy_loss_backstopped_by_timer(self):
        link = lambda: LinkSpec(
            delay=ConstantDelay(1.0), loss=BernoulliLoss(0.3)
        )
        result = run_sack(total=100, forward=link(), reverse=link(), seed=4)
        assert result.completed and result.in_order

    def test_one_ack_per_arrival(self):
        result = run_sack(total=300)
        assert (
            result.receiver_stats["acks_sent"]
            == result.receiver_stats["data_received"]
        )


class TestFastRetransmit:
    def test_single_loss_recovers_without_timeout(self):
        # one data message lost in a full window: the SACK blocks above it
        # trigger fast retransmit; the RTO must never fire
        result = run_transfer(
            SackSender(8), SackReceiver(8), GreedySource(8),
            forward=LinkSpec(delay=ConstantDelay(1.0), loss=ScriptedLoss({2})),
            reverse=LinkSpec(delay=ConstantDelay(1.0)),
            seed=0, trace=True, max_time=1000.0,
        )
        assert result.completed and result.in_order
        fast = result.trace.filter(
            kind=EventKind.TIMEOUT, predicate=lambda e: e.detail == "fast-retransmit"
        )
        assert len(fast) == 1 and fast[0].seq == 2
        assert result.sender_stats["timeouts_fired"] == 0

    def test_fast_retransmit_needs_threshold(self, sim):
        from repro.channel.channel import Channel

        sender = SackSender(8, timeout_period=100.0)
        channel = Channel(sim)
        channel.connect(lambda m: None)
        sender.attach(sim, channel)
        for index in range(5):
            sender.submit(f"p{index}")
        # hole at 0; evidence grows one SACKed segment at a time
        sender.on_message(SackAck(cum=-1, blocks=((1, 1),)))
        sender.on_message(SackAck(cum=-1, blocks=((1, 2),)))
        assert sender.stats.retransmissions == 0  # only 2 above the hole
        sender.on_message(SackAck(cum=-1, blocks=((1, 3),)))
        assert sender.stats.retransmissions == 1  # threshold reached

    def test_each_hole_fast_retransmitted_once(self, sim):
        from repro.channel.channel import Channel

        sender = SackSender(8, timeout_period=100.0)
        channel = Channel(sim)
        channel.connect(lambda m: None)
        sender.attach(sim, channel)
        for index in range(6):
            sender.submit(f"p{index}")
        sender.on_message(SackAck(cum=-1, blocks=((1, 4),)))
        first = sender.stats.retransmissions
        sender.on_message(SackAck(cum=-1, blocks=((1, 5),)))
        assert sender.stats.retransmissions == first  # 0 not resent again

    def test_timeout_resets_episode(self, sim):
        from repro.channel.channel import Channel

        sender = SackSender(4, timeout_period=5.0)
        channel = Channel(sim)
        channel.connect(lambda m: None)
        sender.attach(sim, channel)
        for index in range(4):
            sender.submit(f"p{index}")
        sender.on_message(SackAck(cum=-1, blocks=((1, 3),)))
        assert 0 in sender._fast_retransmitted
        sim.run(until=6.0)  # RTO fires
        assert sender.stats.timeouts_fired == 1
        assert not sender._fast_retransmitted  # new episode


class TestReceiverSackBlocks:
    def _receiver(self, sim):
        from repro.channel.channel import Channel
        from repro.core.messages import DataMessage

        receiver = SackReceiver(16)
        channel = Channel(sim)
        acks = []
        channel.connect(lambda m: None)
        receiver.attach(sim, channel)
        receiver.tx.send = acks.append  # capture directly
        return receiver, acks

    def test_blocks_report_buffered_runs(self, sim):
        from repro.core.messages import DataMessage

        receiver, acks = self._receiver(sim)
        for seq in (2, 3, 7, 5):
            receiver.on_message(DataMessage(seq=seq))
        last = acks[-1]
        assert last.cum == -1
        assert (2, 3) in last.blocks
        assert (5, 5) in last.blocks
        assert (7, 7) in last.blocks

    def test_most_recent_run_listed_first(self, sim):
        from repro.core.messages import DataMessage

        receiver, acks = self._receiver(sim)
        receiver.on_message(DataMessage(seq=5))
        receiver.on_message(DataMessage(seq=2))
        assert acks[-1].blocks[0] == (2, 2)

    def test_at_most_three_blocks(self, sim):
        from repro.core.messages import DataMessage

        receiver, acks = self._receiver(sim)
        for seq in (2, 4, 6, 8, 10):
            receiver.on_message(DataMessage(seq=seq))
        assert len(acks[-1].blocks) == 3

    def test_cum_advances_with_in_order_data(self, sim):
        from repro.core.messages import DataMessage

        receiver, acks = self._receiver(sim)
        receiver.on_message(DataMessage(seq=0))
        receiver.on_message(DataMessage(seq=1))
        assert acks[-1].cum == 1
        assert acks[-1].blocks == ()


class TestValidation:
    def test_wrong_message_types(self, sim):
        from repro.channel.channel import Channel
        from repro.core.messages import BlockAck, DataMessage

        sender = SackSender(4, timeout_period=3.0)
        sender.attach(sim, Channel(sim))
        with pytest.raises(TypeError):
            sender.on_message(BlockAck(0, 0))
        receiver = SackReceiver(4)
        receiver.attach(sim, Channel(sim))
        with pytest.raises(TypeError):
            receiver.on_message(SackAck(cum=0))

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SackSender(0)
