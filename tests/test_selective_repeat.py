"""Tests for the selective-repeat baseline."""

import pytest

from repro.channel.delay import ConstantDelay, UniformDelay
from repro.channel.impairments import BernoulliLoss, ScriptedLoss
from repro.protocols.selective_repeat import (
    SelectiveRepeatReceiver,
    SelectiveRepeatSender,
)
from repro.sim.runner import LinkSpec, run_transfer
from repro.trace.events import EventKind
from repro.workloads.sources import GreedySource


def run_sr(total=200, w=8, forward=None, reverse=None, seed=0, trace=False):
    return run_transfer(
        SelectiveRepeatSender(w), SelectiveRepeatReceiver(w),
        GreedySource(total), forward=forward, reverse=reverse, seed=seed,
        trace=trace, max_time=100_000.0,
    )


class TestBehaviour:
    def test_lossless_in_order(self):
        result = run_sr()
        assert result.completed and result.in_order

    def test_one_ack_per_data_message(self):
        result = run_sr(total=300)
        # the defining trait: acks == data receptions exactly
        assert (
            result.receiver_stats["acks_sent"]
            == result.receiver_stats["data_received"]
        )

    def test_all_acks_are_singletons(self):
        result = run_sr(total=100, trace=True)
        acks = result.trace.filter(kind=EventKind.SEND_ACK)
        assert acks and all(e.seq == e.seq_hi for e in acks)

    def test_recovers_from_loss_per_message(self):
        # one lost data message retransmits exactly that message
        result = run_transfer(
            SelectiveRepeatSender(4), SelectiveRepeatReceiver(4),
            GreedySource(4),
            forward=LinkSpec(delay=ConstantDelay(1.0), loss=ScriptedLoss({1})),
            reverse=LinkSpec(delay=ConstantDelay(1.0)),
            seed=0, trace=True, max_time=1000.0,
        )
        assert result.completed and result.in_order
        resends = result.trace.filter(kind=EventKind.RESEND_DATA)
        assert len(resends) == 1 and resends[0].seq == 1

    def test_out_of_order_buffered(self):
        link = lambda: LinkSpec(delay=UniformDelay(0.1, 1.9))
        result = run_sr(total=200, forward=link(), reverse=link(), seed=2)
        assert result.completed and result.in_order
        assert result.receiver_stats["max_buffered"] > 0
        assert result.sender_stats["retransmissions"] == 0

    def test_heavy_loss_correct(self):
        link = lambda: LinkSpec(
            delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(0.25)
        )
        result = run_sr(total=120, forward=link(), reverse=link(), seed=3)
        assert result.completed and result.in_order


class TestValidation:
    def test_block_ack_rejected(self, sim):
        from repro.channel.channel import Channel
        from repro.core.messages import BlockAck

        sender = SelectiveRepeatSender(4, timeout_period=3.0)
        sender.attach(sim, Channel(sim))
        with pytest.raises(TypeError):
            sender.on_message(BlockAck(0, 2))  # non-singleton

    def test_duplicate_singleton_ack_is_stale(self, sim):
        from repro.channel.channel import Channel
        from repro.core.messages import BlockAck

        sender = SelectiveRepeatSender(4, timeout_period=3.0)
        channel = Channel(sim)
        channel.connect(lambda m: None)
        sender.attach(sim, channel)
        sender.submit("p")
        sender.on_message(BlockAck(0, 0))
        sender.on_message(BlockAck(0, 0))
        assert sender.stats.stale_acks == 1
