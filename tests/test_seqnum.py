"""Unit and property tests for finite sequence-number arithmetic.

The reconstruction function ``f`` is the load-bearing piece of the paper's
Section V; its contract — exact recovery whenever ``x <= y < x + n`` — is
verified here both on hand cases and with hypothesis over the full
precondition space.
"""

import pytest
from hypothesis import given, strategies as st

from repro.core.seqnum import SequenceDomain, minimum_domain_size, reconstruct


class TestReconstruct:
    def test_identity_when_wire_equals_value(self):
        assert reconstruct(0, 0, 8) == 0
        assert reconstruct(5, 5, 8) == 5

    def test_paper_branch_wire_above_reference_mod(self):
        # y mod n >= x mod n: same "block" of n values
        assert reconstruct(10, 3, 8) == 11  # x=10 (mod 2), y mod 8 = 3 -> 11

    def test_paper_branch_wire_below_reference_mod(self):
        # y mod n < x mod n: next block
        assert reconstruct(6, 1, 8) == 9

    def test_exhaustive_small_domain(self):
        n = 6
        for x in range(40):
            for y in range(x, x + n):
                assert reconstruct(x, y % n, n) == y

    def test_wire_out_of_domain_rejected(self):
        with pytest.raises(ValueError):
            reconstruct(0, 8, 8)
        with pytest.raises(ValueError):
            reconstruct(0, -1, 8)

    def test_bad_domain_rejected(self):
        with pytest.raises(ValueError):
            reconstruct(0, 0, 0)

    def test_negative_reference_rejected(self):
        with pytest.raises(ValueError):
            reconstruct(-1, 0, 8)

    @given(
        x=st.integers(min_value=0, max_value=10**9),
        offset=st.integers(min_value=0, max_value=999),
        n=st.integers(min_value=1, max_value=1000),
    )
    def test_roundtrip_property(self, x, offset, n):
        """f(x, y mod n) == y for every y in [x, x + n)."""
        y = x + (offset % n)
        assert reconstruct(x, y % n, n) == y

    @given(
        x=st.integers(min_value=0, max_value=10**6),
        n=st.integers(min_value=2, max_value=64),
    )
    def test_ambiguity_outside_precondition(self, x, n):
        """y = x + n (just past the window) collides with y = x."""
        assert reconstruct(x, (x + n) % n, n) == x  # cannot distinguish


class TestMinimumDomainSize:
    def test_paper_value(self):
        assert minimum_domain_size(1) == 2
        assert minimum_domain_size(8) == 16

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            minimum_domain_size(0)


class TestSequenceDomain:
    def test_wrap(self):
        domain = SequenceDomain(8)
        assert domain.wrap(0) == 0
        assert domain.wrap(8) == 0
        assert domain.wrap(13) == 5

    def test_reconstruct_delegates(self):
        domain = SequenceDomain(8)
        assert domain.reconstruct(6, 1) == 9

    def test_add_sub_modular(self):
        domain = SequenceDomain(8)
        assert domain.add(7, 3) == 2
        assert domain.sub(2, 7) == 3
        assert domain.sub(7, 2) == 5

    def test_sub_recovers_true_difference_within_n(self):
        domain = SequenceDomain(16)
        for base in (0, 5, 14, 100):
            for diff in range(16):
                a = (base + diff) % 16
                assert domain.sub(a, base % 16) == diff

    def test_in_window(self):
        domain = SequenceDomain(16)
        # window of 8 starting at wire 12: slots 12,13,14,15,0,1,2,3
        inside = [12, 13, 14, 15, 0, 1, 2, 3]
        for wire in range(16):
            assert domain.in_window(wire, 12, 8) == (wire in inside)

    def test_in_window_invalid_width(self):
        domain = SequenceDomain(8)
        with pytest.raises(ValueError):
            domain.in_window(0, 0, 0)
        with pytest.raises(ValueError):
            domain.in_window(0, 0, 9)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            SequenceDomain(0)

    @given(
        n=st.integers(min_value=1, max_value=256),
        a=st.integers(min_value=0, max_value=10**6),
        b=st.integers(min_value=0, max_value=10**6),
    )
    def test_add_sub_inverse_property(self, n, a, b):
        domain = SequenceDomain(n)
        assert domain.sub(domain.add(a % n, b), b % n) == a % n
