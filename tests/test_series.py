"""Tests for the time-series probe."""

import pytest

from repro.analysis.series import Probe
from repro.channel.impairments import BernoulliLoss
from repro.channel.delay import UniformDelay
from repro.protocols.blockack import BlockAckReceiver, BlockAckSender
from repro.sim.engine import Simulator
from repro.sim.runner import LinkSpec, run_transfer
from repro.workloads.sources import GreedySource


class TestProbeMechanics:
    def test_samples_on_grid(self, sim):
        counter = [0]
        probe = Probe(sim, interval=2.0, signals={"c": lambda: counter[0]})
        probe.start()
        sim.schedule(10.5, probe.stop)
        sim.run()
        times = [t for t, _ in probe.series["c"]]
        assert times == [0.0, 2.0, 4.0, 6.0, 8.0, 10.0]

    def test_captures_changing_signal(self, sim):
        value = [0.0]

        def bump():
            value[0] += 1.0

        for k in range(1, 6):
            sim.schedule(float(k), bump)
        probe = Probe(sim, interval=1.0, signals={"v": lambda: value[0]})
        probe.start()
        sim.schedule(5.5, probe.stop)
        sim.run()
        assert probe.values("v")[-1] == 5.0
        assert probe.last("v") == 5.0

    def test_stop_halts_sampling(self, sim):
        probe = Probe(sim, interval=1.0, signals={"x": lambda: 0.0})
        probe.start()
        sim.schedule(3.5, probe.stop)
        sim.schedule(10.0, lambda: None)
        sim.run()
        assert len(probe.series["x"]) == 4  # t = 0,1,2,3

    def test_max_samples_cap(self, sim):
        probe = Probe(
            sim, interval=0.1, signals={"x": lambda: 0.0}, max_samples=5
        )
        probe.start()
        sim.run()
        assert len(probe.series["x"]) == 5

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            Probe(sim, interval=0.0, signals={"x": lambda: 0.0})
        with pytest.raises(ValueError):
            Probe(sim, interval=1.0, signals={})
        probe = Probe(sim, interval=1.0, signals={"x": lambda: 0.0})
        with pytest.raises(ValueError):
            probe.last("x")  # no samples yet


class TestProbeOnProtocol:
    def test_window_occupancy_trajectory(self):
        """Probe a live transfer by piggybacking on attach."""
        sender = BlockAckSender(8, timeout_mode="per_message_safe")
        receiver = BlockAckReceiver(8)
        captured = {}

        original = sender._after_attach

        def attach_and_probe():
            original()
            captured["probe"] = Probe(
                sender.sim,
                interval=5.0,
                signals={
                    "outstanding": lambda: sender.window.in_flight_window,
                    "buffered": lambda: len(
                        receiver.window.received_unaccepted
                    ),
                },
            ).start()

        sender._after_attach = attach_and_probe
        link = lambda: LinkSpec(
            delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(0.05)
        )
        result = run_transfer(
            sender, receiver, GreedySource(300),
            forward=link(), reverse=link(), seed=7, max_time=100_000.0,
        )
        assert result.completed and result.in_order
        probe = captured["probe"]
        outstanding = probe.values("outstanding")
        assert max(outstanding) <= 8  # never exceeds the window
        assert max(outstanding) >= 6  # pipeline actually filled
        assert any(value > 0 for value in probe.values("buffered"))
