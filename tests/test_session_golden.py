"""Arbiter-refactor parity: session decision traces pinned pre-refactor.

``tests/golden/session_traces.json`` was recorded with the multi-flow
stack as it stood *before* the link-arbiter refactor
(:mod:`repro.channel.arbiter`).  The refactor threads an ``arbiter=``
seam through :class:`~repro.channel.mux.FlowMux`,
:class:`~repro.sim.host.SessionHost`, and the sweep layer; with the
default configuration (``fifo`` scheduler, infinite capacity — i.e. no
``ArbiterConfig`` at all) every pinned session must reproduce its
recording byte-for-byte on both engines.  That is the acceptance
criterion that makes the refactor safe: the arbiter only exists when a
finite rate is requested, and ``FlowPort.send`` keeps the exact
historical direct-to-link path otherwise.

Regenerate deliberately with ``python tests/golden/generate_sessions.py``
only when a behaviour change is intended and understood.
"""

import json

import pytest

from repro.trace.events import EventKind
from repro.trace.recorder import decision_diff

from .golden.generate_sessions import (
    SESSION_GOLDEN_PATH,
    golden_session_cases,
    record_session_case,
)

RECORDINGS = json.loads(SESSION_GOLDEN_PATH.read_text())


def _rehydrate(recorded):
    """JSON rows back into decision-key tuples."""
    return [
        (time, actor, EventKind(kind), seq, seq_hi)
        for time, actor, kind, seq, seq_hi in recorded
    ]


@pytest.mark.parametrize(
    "engine", ["default", "fast"], ids=["default-engine", "fast-engine"]
)
@pytest.mark.parametrize(
    "case_id,kwargs",
    golden_session_cases(),
    ids=[case_id for case_id, _ in golden_session_cases()],
)
def test_session_trace_matches_pre_arbiter_golden(case_id, kwargs, engine):
    assert case_id in RECORDINGS, (
        f"no golden recording for {case_id}; "
        f"run tests/golden/generate_sessions.py"
    )
    golden = _rehydrate(RECORDINGS[case_id])
    current = _rehydrate(record_session_case(engine=engine, **kwargs))
    differences = decision_diff(golden, current)
    assert not differences, (
        f"{case_id} [{engine}]: session decision trace diverged from the "
        f"pre-arbiter recording:\n" + "\n".join(differences)
    )


def test_every_session_recording_is_exercised():
    exercised = {case_id for case_id, _ in golden_session_cases()}
    assert exercised == set(RECORDINGS), (
        "golden session file and case list out of sync; "
        "run tests/golden/generate_sessions.py"
    )
