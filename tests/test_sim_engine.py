"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import ScheduleInPastError, SimulationError, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_callback_runs_at_scheduled_time(self, sim):
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_args_are_passed(self, sim):
        seen = []
        sim.schedule(1.0, lambda a, b: seen.append((a, b)), "x", 2)
        sim.run()
        assert seen == [("x", 2)]

    def test_events_run_in_time_order(self, sim):
        order = []
        sim.schedule(3.0, order.append, "c")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self, sim):
        order = []
        for tag in "abcde":
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == list("abcde")

    def test_zero_delay_allowed(self, sim):
        seen = []
        sim.schedule(0.0, seen.append, 1)
        sim.run()
        assert seen == [1]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ScheduleInPastError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self, sim):
        seen = []
        sim.schedule(2.0, lambda: sim.schedule_at(7.0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [7.0]

    def test_reentrant_scheduling_from_callback(self, sim):
        seen = []

        def first():
            sim.schedule(1.5, lambda: seen.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert seen == [2.5]

    def test_chain_of_events(self, sim):
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        sim.run()
        assert count[0] == 10
        assert sim.now == 10.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        seen = []
        event = sim.schedule(1.0, seen.append, "nope")
        event.cancel()
        sim.run()
        assert seen == []

    def test_cancel_is_idempotent(self, sim):
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert not event.pending

    def test_cancel_one_of_many(self, sim):
        seen = []
        sim.schedule(1.0, seen.append, "a")
        doomed = sim.schedule(2.0, seen.append, "b")
        sim.schedule(3.0, seen.append, "c")
        doomed.cancel()
        sim.run()
        assert seen == ["a", "c"]

    def test_pending_count_excludes_cancelled(self, sim):
        sim.schedule(1.0, lambda: None)
        event = sim.schedule(2.0, lambda: None)
        event.cancel()
        assert sim.pending_count == 1

    def test_peek_time_skips_cancelled_head(self, sim):
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek_time() == 2.0

    def test_peek_time_empty_queue(self, sim):
        assert sim.peek_time() is None


class TestRunControl:
    def test_run_until_stops_before_later_events(self, sim):
        seen = []
        sim.schedule(1.0, seen.append, "a")
        sim.schedule(5.0, seen.append, "b")
        sim.run(until=3.0)
        assert seen == ["a"]
        assert sim.now == 3.0  # clock advanced to the horizon

    def test_run_until_resumes(self, sim):
        seen = []
        sim.schedule(1.0, seen.append, "a")
        sim.schedule(5.0, seen.append, "b")
        sim.run(until=3.0)
        sim.run()
        assert seen == ["a", "b"]

    def test_max_events_bound(self, sim):
        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(1.0, forever)
        sim.run(max_events=50)
        assert sim.events_processed == 50

    def test_step_returns_false_on_empty_queue(self, sim):
        assert sim.step() is False

    def test_step_runs_exactly_one_event(self, sim):
        seen = []
        sim.schedule(1.0, seen.append, "a")
        sim.schedule(2.0, seen.append, "b")
        assert sim.step() is True
        assert seen == ["a"]

    def test_run_not_reentrant(self, sim):
        def evil():
            sim.run()

        sim.schedule(1.0, evil)
        with pytest.raises(SimulationError):
            sim.run()

    def test_run_until_idle_raises_on_livelock(self, sim):
        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(1.0, forever)
        with pytest.raises(SimulationError):
            sim.run_until_idle(max_events=100)

    def test_run_until_idle_completes(self, sim):
        seen = []
        sim.schedule(1.0, seen.append, 1)
        sim.run_until_idle()
        assert seen == [1]

    def test_events_processed_counter(self, sim):
        for delay in (1.0, 2.0, 3.0):
            sim.schedule(delay, lambda: None)
        sim.run()
        assert sim.events_processed == 3

    def test_clock_never_goes_backwards(self, sim):
        stamps = []
        for delay in (5.0, 1.0, 3.0, 1.0, 4.0):
            sim.schedule(delay, lambda: stamps.append(sim.now))
        sim.run()
        assert stamps == sorted(stamps)


class TestRunWhile:
    def test_drains_while_predicate_holds(self, sim):
        seen = []
        for delay in (1.0, 2.0, 3.0, 4.0):
            sim.schedule(delay, lambda: seen.append(sim.now))
        processed = sim.run_while(lambda: len(seen) < 2)
        assert seen == [1.0, 2.0]
        assert processed == 2

    def test_resumes_after_predicate_flips(self, sim):
        seen = []
        for delay in (1.0, 2.0, 3.0):
            sim.schedule(delay, lambda: seen.append(sim.now))
        sim.run_while(lambda: len(seen) < 1)
        sim.run_while(lambda: True)
        assert seen == [1.0, 2.0, 3.0]

    def test_stops_on_empty_queue(self, sim):
        sim.schedule(1.0, lambda: None)
        assert sim.run_while(lambda: True) == 1

    def test_max_time_head_peek_boundary(self, sim):
        # head-peek semantics (aligned with run(until=)): an event
        # strictly past max_time stays queued, one exactly at the bound
        # fires, and the clock settles at max_time when the bound is
        # what stopped the drain
        seen = []
        sim.schedule(1.0, seen.append, "a")
        sim.schedule(3.0, seen.append, "b")
        sim.schedule(5.0, seen.append, "c")
        processed = sim.run_while(lambda: True, max_time=3.0)
        assert seen == ["a", "b"]
        assert processed == 2
        assert sim.now == 3.0
        # the crossing event is still queued and fires on the next drain
        sim.run_while(lambda: True)
        assert seen == ["a", "b", "c"]
        assert sim.now == 5.0

    def test_max_events_bound(self, sim):
        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(1.0, forever)
        assert sim.run_while(lambda: True, max_events=25) == 25
        assert sim.events_processed == 25

    def test_skips_cancelled_events(self, sim):
        seen = []
        doomed = sim.schedule(1.0, seen.append, "nope")
        sim.schedule(2.0, seen.append, "a")
        doomed.cancel()
        processed = sim.run_while(lambda: True)
        assert seen == ["a"]
        assert processed == 1

    def test_ties_broken_by_insertion_order(self, sim):
        order = []
        for tag in "abcde":
            sim.schedule(1.0, order.append, tag)
        sim.run_while(lambda: True)
        assert order == list("abcde")

    def test_not_reentrant(self, sim):
        def evil():
            sim.run_while(lambda: True)

        sim.schedule(1.0, evil)
        with pytest.raises(SimulationError):
            sim.run_while(lambda: True)
