"""Unit tests for seeded random stream management."""

import os
import subprocess
import sys

from repro.sim.randomness import RandomStreams, stream_seed


class TestStreamSeed:
    def test_deterministic(self):
        assert stream_seed(42, "loss") == stream_seed(42, "loss")

    def test_distinct_names_distinct_seeds(self):
        assert stream_seed(42, "loss") != stream_seed(42, "delay")

    def test_distinct_masters_distinct_seeds(self):
        assert stream_seed(1, "loss") != stream_seed(2, "loss")

    def test_adjacent_masters_uncorrelated_draws(self):
        # first draws from adjacent master seeds should differ
        a = RandomStreams(100).get("x").random()
        b = RandomStreams(101).get("x").random()
        assert a != b


class TestRandomStreams:
    def test_same_name_returns_same_stream(self):
        streams = RandomStreams(7)
        assert streams.get("a") is streams.get("a")

    def test_different_names_independent(self):
        streams = RandomStreams(7)
        a, b = streams.get("a"), streams.get("b")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_reproducible_across_instances(self):
        draws1 = [RandomStreams(9).get("chan").random() for _ in range(1)]
        draws2 = [RandomStreams(9).get("chan").random() for _ in range(1)]
        assert draws1 == draws2

    def test_consuming_one_stream_leaves_others_untouched(self):
        # the common-random-numbers property
        baseline = RandomStreams(5)
        expected = [baseline.get("b").random() for _ in range(3)]
        perturbed = RandomStreams(5)
        for _ in range(100):
            perturbed.get("a").random()  # heavy use of another stream
        assert [perturbed.get("b").random() for _ in range(3)] == expected

    def test_spawn_derives_independent_family(self):
        parent = RandomStreams(5)
        child = parent.spawn("rep1")
        assert child.get("x").random() != parent.get("x").random()

    def test_names_lists_created_streams(self):
        streams = RandomStreams(0)
        streams.get("b")
        streams.get("a")
        assert list(streams.names()) == ["a", "b"]


class TestHashSeedIndependence:
    """Stream derivation must not depend on PYTHONHASHSEED.

    Parallel sweep workers are separate processes; if seed derivation
    leaned on ``hash()`` (salted per process since Python 3.3), the
    "byte-identical to serial" guarantee would silently break.
    """

    PROBE = (
        "from repro.sim.randomness import RandomStreams, stream_seed;"
        "streams = RandomStreams(42);"
        "child = streams.spawn('rep3');"
        "print(stream_seed(42, 'loss'), streams.get('delay').random(),"
        " child.get('loss').random())"
    )

    def _probe(self, hash_seed: str) -> str:
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), "src") if p
        )
        return subprocess.run(
            [sys.executable, "-c", self.PROBE],
            check=True, capture_output=True, text=True, env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        ).stdout

    def test_streams_identical_across_hash_seeds(self):
        assert self._probe("1") == self._probe("31337")
