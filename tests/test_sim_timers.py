"""Unit tests for restartable timers and timer banks."""

from repro.sim.timers import AdaptiveTimer, AdaptiveTimerBank, Timer, TimerBank


class TestTimer:
    def test_fires_after_period(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(3.0)
        sim.run()
        assert fired == [3.0]

    def test_callback_args(self, sim):
        fired = []
        timer = Timer(sim, lambda a, b: fired.append((a, b)), "x", 9)
        timer.start(1.0)
        sim.run()
        assert fired == [("x", 9)]

    def test_stop_prevents_firing(self, sim):
        fired = []
        timer = Timer(sim, fired.append, 1)
        timer.start(3.0)
        sim.schedule(1.0, timer.stop)
        sim.run()
        assert fired == []

    def test_restart_supersedes_previous_arming(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        sim.schedule(1.0, lambda: timer.restart(5.0))
        sim.run()
        assert fired == [6.0]  # not 2.0

    def test_running_property(self, sim):
        timer = Timer(sim, lambda: None)
        assert not timer.running
        timer.start(1.0)
        assert timer.running
        sim.run()
        assert not timer.running

    def test_expires_at(self, sim):
        timer = Timer(sim, lambda: None)
        timer.start(4.0)
        assert timer.expires_at == 4.0
        timer.stop()
        assert timer.expires_at is None

    def test_stop_idle_timer_is_safe(self, sim):
        Timer(sim, lambda: None).stop()  # must not raise

    def test_timer_can_rearm_itself_from_callback(self, sim):
        fired = []

        def on_fire():
            fired.append(sim.now)
            if len(fired) < 3:
                timer.start(2.0)

        timer = Timer(sim, on_fire)
        timer.start(2.0)
        sim.run()
        assert fired == [2.0, 4.0, 6.0]

    def test_one_shot_does_not_repeat(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        sim.run()
        assert len(fired) == 1


class TestTimerBank:
    def test_independent_keys(self, sim):
        fired = []
        bank = TimerBank(sim, fired.append)
        bank.start("a", 1.0)
        bank.start("b", 2.0)
        sim.run()
        assert fired == ["a", "b"]

    def test_restart_same_key(self, sim):
        fired = []
        bank = TimerBank(sim, lambda k: fired.append((k, sim.now)))
        bank.start(7, 2.0)
        sim.schedule(1.0, lambda: bank.start(7, 3.0))
        sim.run()
        assert fired == [(7, 4.0)]

    def test_stop_specific_key(self, sim):
        fired = []
        bank = TimerBank(sim, fired.append)
        bank.start("keep", 2.0)
        bank.start("drop", 2.0)
        bank.stop("drop")
        sim.run()
        assert fired == ["keep"]

    def test_stop_unknown_key_is_safe(self, sim):
        TimerBank(sim, lambda k: None).stop("ghost")  # must not raise

    def test_stop_all(self, sim):
        fired = []
        bank = TimerBank(sim, fired.append)
        for key in range(5):
            bank.start(key, 1.0)
        bank.stop_all()
        sim.run()
        assert fired == []

    def test_running_query(self, sim):
        bank = TimerBank(sim, lambda k: None)
        bank.start("x", 1.0)
        assert bank.running("x")
        assert not bank.running("y")
        sim.run()
        assert not bank.running("x")

    def test_active_keys(self, sim):
        bank = TimerBank(sim, lambda k: None)
        bank.start("a", 1.0)
        bank.start("b", 2.0)
        bank.stop("a")
        assert bank.active_keys() == ["b"]

    def test_prune_drops_idle_timers(self, sim):
        bank = TimerBank(sim, lambda k: None)
        bank.start("a", 1.0)
        sim.run()
        bank.start("b", 5.0)
        bank.prune()
        assert bank.active_keys() == ["b"]
        assert "a" not in bank._timers


class TestStaleArming:
    """A superseded arming must never fire — the backoff-critical property.

    Adaptive retransmission re-arms timers with periods that grow
    (backoff) and *shrink* (estimate convergence, backoff reset on
    progress).  Whatever the period does between re-arms, only the most
    recent arming may produce a callback.
    """

    def test_stop_then_restart_with_shorter_period(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(10.0)
        sim.schedule(1.0, timer.stop)
        sim.schedule(2.0, lambda: timer.restart(1.0))
        sim.run()
        assert fired == [3.0]  # the stale t=10 arming never fires

    def test_rapid_rearm_sequence_fires_once(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        # shrink, grow, shrink again — all before anything fires
        timer.start(8.0)
        timer.restart(2.0)
        timer.restart(6.0)
        timer.restart(1.5)
        sim.run()
        assert fired == [1.5]

    def test_bank_rearm_with_shrinking_period(self, sim):
        fired = []
        bank = TimerBank(sim, lambda k: fired.append((k, sim.now)))
        bank.start("a", 5.0)
        sim.schedule(1.0, lambda: bank.start("a", 1.0))  # shrink: 5 -> 1
        sim.run()
        assert fired == [("a", 2.0)]  # not (a, 5.0)

    def test_bank_stop_between_rearms(self, sim):
        fired = []
        bank = TimerBank(sim, lambda k: fired.append((k, sim.now)))
        bank.start(3, 4.0)
        sim.schedule(1.0, lambda: bank.stop(3))
        sim.schedule(2.0, lambda: bank.start(3, 0.5))
        sim.run()
        assert fired == [(3, 2.5)]


class TestAdaptiveTimer:
    def test_uses_period_fn_when_no_argument(self, sim):
        fired = []
        timer = AdaptiveTimer(
            sim, lambda: fired.append(sim.now), period_fn=lambda: 2.5
        )
        timer.start()
        sim.run()
        assert fired == [2.5]

    def test_explicit_period_overrides_period_fn(self, sim):
        fired = []
        timer = AdaptiveTimer(
            sim, lambda: fired.append(sim.now), period_fn=lambda: 99.0
        )
        timer.start(1.0)
        sim.run()
        assert fired == [1.0]

    def test_period_fn_consulted_at_each_arming(self, sim):
        periods = [4.0, 1.0]  # backoff collapsing after progress
        fired = []
        timer = AdaptiveTimer(
            sim, lambda: fired.append(sim.now), period_fn=lambda: periods.pop(0)
        )
        timer.start()  # arms for 4.0
        sim.schedule(2.0, timer.restart)  # re-arms for 1.0: shrinks past t=4
        sim.run()
        assert fired == [3.0]  # stale t=4 arming is gone

    def test_restart_is_argless_alias(self, sim):
        fired = []
        timer = AdaptiveTimer(
            sim, lambda: fired.append(sim.now), period_fn=lambda: 1.0
        )
        timer.restart()
        sim.run()
        assert fired == [1.0]


class TestAdaptiveTimerBank:
    def test_per_key_period_fn(self, sim):
        fired = []
        bank = AdaptiveTimerBank(
            sim,
            lambda k: fired.append((k, sim.now)),
            period_fn=lambda key: 1.0 if key == "fast" else 3.0,
        )
        bank.start("fast")
        bank.start("slow")
        sim.run()
        assert fired == [("fast", 1.0), ("slow", 3.0)]

    def test_rearm_with_shrunk_period_fn(self, sim):
        periods = {"x": 10.0}
        fired = []
        bank = AdaptiveTimerBank(
            sim, lambda k: fired.append((k, sim.now)), period_fn=periods.__getitem__
        )
        bank.start("x")  # arms for 10.0

        def shrink_and_rearm():
            periods["x"] = 1.0  # RTO estimate collapsed between re-arms
            bank.start("x")

        sim.schedule(2.0, shrink_and_rearm)
        sim.run()
        assert fired == [("x", 3.0)]  # exactly once, from the new arming

    def test_explicit_period_still_accepted(self, sim):
        fired = []
        bank = AdaptiveTimerBank(
            sim, lambda k: fired.append(sim.now), period_fn=lambda key: 50.0
        )
        bank.start("k", 2.0)
        sim.run()
        assert fired == [2.0]
