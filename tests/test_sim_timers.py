"""Unit tests for restartable timers and timer banks."""

from repro.sim.timers import Timer, TimerBank


class TestTimer:
    def test_fires_after_period(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(3.0)
        sim.run()
        assert fired == [3.0]

    def test_callback_args(self, sim):
        fired = []
        timer = Timer(sim, lambda a, b: fired.append((a, b)), "x", 9)
        timer.start(1.0)
        sim.run()
        assert fired == [("x", 9)]

    def test_stop_prevents_firing(self, sim):
        fired = []
        timer = Timer(sim, fired.append, 1)
        timer.start(3.0)
        sim.schedule(1.0, timer.stop)
        sim.run()
        assert fired == []

    def test_restart_supersedes_previous_arming(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        sim.schedule(1.0, lambda: timer.restart(5.0))
        sim.run()
        assert fired == [6.0]  # not 2.0

    def test_running_property(self, sim):
        timer = Timer(sim, lambda: None)
        assert not timer.running
        timer.start(1.0)
        assert timer.running
        sim.run()
        assert not timer.running

    def test_expires_at(self, sim):
        timer = Timer(sim, lambda: None)
        timer.start(4.0)
        assert timer.expires_at == 4.0
        timer.stop()
        assert timer.expires_at is None

    def test_stop_idle_timer_is_safe(self, sim):
        Timer(sim, lambda: None).stop()  # must not raise

    def test_timer_can_rearm_itself_from_callback(self, sim):
        fired = []

        def on_fire():
            fired.append(sim.now)
            if len(fired) < 3:
                timer.start(2.0)

        timer = Timer(sim, on_fire)
        timer.start(2.0)
        sim.run()
        assert fired == [2.0, 4.0, 6.0]

    def test_one_shot_does_not_repeat(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        sim.run()
        assert len(fired) == 1


class TestTimerBank:
    def test_independent_keys(self, sim):
        fired = []
        bank = TimerBank(sim, fired.append)
        bank.start("a", 1.0)
        bank.start("b", 2.0)
        sim.run()
        assert fired == ["a", "b"]

    def test_restart_same_key(self, sim):
        fired = []
        bank = TimerBank(sim, lambda k: fired.append((k, sim.now)))
        bank.start(7, 2.0)
        sim.schedule(1.0, lambda: bank.start(7, 3.0))
        sim.run()
        assert fired == [(7, 4.0)]

    def test_stop_specific_key(self, sim):
        fired = []
        bank = TimerBank(sim, fired.append)
        bank.start("keep", 2.0)
        bank.start("drop", 2.0)
        bank.stop("drop")
        sim.run()
        assert fired == ["keep"]

    def test_stop_unknown_key_is_safe(self, sim):
        TimerBank(sim, lambda k: None).stop("ghost")  # must not raise

    def test_stop_all(self, sim):
        fired = []
        bank = TimerBank(sim, fired.append)
        for key in range(5):
            bank.start(key, 1.0)
        bank.stop_all()
        sim.run()
        assert fired == []

    def test_running_query(self, sim):
        bank = TimerBank(sim, lambda k: None)
        bank.start("x", 1.0)
        assert bank.running("x")
        assert not bank.running("y")
        sim.run()
        assert not bank.running("x")

    def test_active_keys(self, sim):
        bank = TimerBank(sim, lambda k: None)
        bank.start("a", 1.0)
        bank.start("b", 2.0)
        bank.stop("a")
        assert bank.active_keys() == ["b"]

    def test_prune_drops_idle_timers(self, sim):
        bank = TimerBank(sim, lambda k: None)
        bank.start("a", 1.0)
        sim.run()
        bank.start("b", 5.0)
        bank.prune()
        assert bank.active_keys() == ["b"]
        assert "a" not in bank._timers
