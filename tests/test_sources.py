"""Tests for workload sources."""

import random

import pytest

from repro.protocols.blockack import BlockAckReceiver, BlockAckSender
from repro.sim.runner import run_transfer
from repro.workloads.sources import (
    BurstySource,
    GreedySource,
    PoissonSource,
    ReplaySource,
)


def run_source(source, w=8, seed=0):
    sender = BlockAckSender(w)
    receiver = BlockAckReceiver(w)
    return run_transfer(sender, receiver, source, seed=seed, max_time=500_000.0)


class TestGreedySource:
    def test_fills_window_immediately(self, sim):
        sender = BlockAckSender(4, timeout_period=3.0)
        from repro.channel.channel import Channel

        channel = Channel(sim)
        channel.connect(lambda m: None)
        sender.attach(sim, channel)
        source = GreedySource(10)
        source.attach(sim, sender)
        assert len(source.submitted) == 4  # exactly one window's worth

    def test_submits_all_eventually(self):
        source = GreedySource(100)
        result = run_source(source)
        assert source.exhausted
        assert result.delivered == 100

    def test_payloads_are_indexed(self):
        source = GreedySource(5)
        run_source(source)
        assert source.submitted == [("msg", i) for i in range(5)]

    def test_zero_total(self):
        source = GreedySource(0)
        result = run_source(source)
        assert result.completed and result.delivered == 0

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            GreedySource(-1)


class TestPoissonSource:
    def test_delivers_all(self):
        source = PoissonSource(80, rate=2.0, rng=random.Random(7))
        result = run_source(source)
        assert result.completed and result.in_order
        assert result.delivered == 80

    def test_light_load_spreads_in_time(self):
        # at rate 0.5 on a channel that could do 4/tu, duration is
        # dominated by arrivals: about total/rate time units
        source = PoissonSource(60, rate=0.5, rng=random.Random(8))
        result = run_source(source)
        assert result.duration > 60 / 0.5 * 0.6

    def test_arrivals_queue_when_window_closed(self):
        # rate far above service: window limits submissions, queue drains
        source = PoissonSource(100, rate=100.0, rng=random.Random(9))
        result = run_source(source, w=2)
        assert result.completed and result.delivered == 100

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            PoissonSource(10, rate=0.0, rng=random.Random(0))


class TestReplaySource:
    def test_replays_exact_schedule(self):
        source = ReplaySource([0.0, 1.5, 1.5, 7.0])
        result = run_source(source)
        assert result.completed and result.delivered == 4
        # last arrival at 7.0 plus one-way delay 1.0
        assert result.duration >= 8.0

    def test_queueing_when_window_closed(self):
        source = ReplaySource([0.0] * 20)  # all at once, window 8
        result = run_source(source, w=8)
        assert result.completed and result.delivered == 20

    def test_empty_schedule(self):
        source = ReplaySource([])
        result = run_source(source)
        assert result.completed and result.delivered == 0

    def test_decreasing_times_rejected(self):
        with pytest.raises(ValueError):
            ReplaySource([2.0, 1.0])

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            ReplaySource([-1.0, 2.0])

    def test_identical_replay_across_protocols(self):
        from repro.protocols.gobackn import GoBackNReceiver, GoBackNSender

        arrivals = [0.1 * i for i in range(30)]
        first = run_source(ReplaySource(arrivals))
        sender, receiver = GoBackNSender(8), GoBackNReceiver(8)
        second = run_transfer(
            sender, receiver, ReplaySource(arrivals), seed=0,
            max_time=500_000.0,
        )
        assert first.delivered == second.delivered == 30


class TestBurstySource:
    def test_delivers_all(self):
        source = BurstySource(90, burst_size=10, gap=5.0)
        result = run_source(source, w=16)
        assert result.completed and result.in_order
        assert result.delivered == 90

    def test_bursts_spaced_by_gap(self):
        source = BurstySource(30, burst_size=10, gap=50.0)
        result = run_source(source, w=16)
        # three bursts, two gaps: duration at least 2 * gap
        assert result.duration >= 100.0

    def test_last_partial_burst(self):
        source = BurstySource(25, burst_size=10, gap=1.0)
        result = run_source(source, w=16)
        assert result.delivered == 25

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BurstySource(10, burst_size=0, gap=1.0)
        with pytest.raises(ValueError):
            BurstySource(10, burst_size=2, gap=-1.0)
