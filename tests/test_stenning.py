"""Tests for the timer-constrained Stenning/Shankar-Lam baseline."""

import pytest

from repro.channel.delay import ConstantDelay, UniformDelay
from repro.channel.impairments import BernoulliLoss
from repro.protocols.stenning import StenningReceiver, StenningSender, decode_latest
from repro.sim.runner import LinkSpec, run_transfer
from repro.workloads.sources import GreedySource


def run_stenning(total=120, w=4, domain=8, reuse=None, forward=None,
                 reverse=None, seed=0):
    sender = StenningSender(w, domain, reuse_delay=reuse)
    receiver = StenningReceiver(w, domain)
    return run_transfer(
        sender, receiver, GreedySource(total),
        forward=forward, reverse=reverse, seed=seed, max_time=500_000.0,
    )


class TestDecodeLatest:
    def test_basic(self):
        assert decode_latest(3, 8, bound=10) == 3
        assert decode_latest(3, 8, bound=12) == 11
        assert decode_latest(3, 8, bound=20) == 19
        assert decode_latest(0, 8, bound=17) == 16

    def test_none_when_no_candidate(self):
        assert decode_latest(5, 8, bound=3) is None
        assert decode_latest(0, 8, bound=0) is None

    def test_wire_out_of_domain(self):
        with pytest.raises(ValueError):
            decode_latest(8, 8, bound=10)

    def test_exhaustive_consistency(self):
        domain = 6
        for bound in range(1, 40):
            for wire in range(domain):
                value = decode_latest(wire, domain, bound)
                if value is not None:
                    assert value % domain == wire
                    assert value < bound
                    assert value + domain >= bound  # largest candidate


class TestTransfer:
    def test_lossless_in_order(self):
        result = run_stenning()
        assert result.completed and result.in_order

    def test_lossy_reordering_in_order(self):
        link = lambda: LinkSpec(
            delay=UniformDelay(0.5, 1.5), loss=BernoulliLoss(0.08)
        )
        result = run_stenning(forward=link(), reverse=link(), seed=3)
        assert result.completed and result.in_order

    def test_minimum_domain_w_plus_one_works(self):
        result = run_stenning(w=4, domain=5)
        assert result.completed and result.in_order

    def test_domain_below_w_plus_one_rejected(self):
        with pytest.raises(ValueError):
            StenningSender(4, 4)
        with pytest.raises(ValueError):
            StenningReceiver(4, 4)


class TestReuseConstraint:
    def test_reuse_delay_caps_throughput(self):
        # domain 5, reuse delay 10 -> at most 0.5 msg/tu regardless of window
        result = run_stenning(total=60, w=4, domain=5, reuse=10.0)
        assert result.completed and result.in_order
        assert result.throughput <= 5 / 10.0 + 0.05

    def test_larger_domain_lifts_the_cap(self):
        capped = run_stenning(total=60, w=4, domain=5, reuse=10.0)
        lifted = run_stenning(total=60, w=4, domain=40, reuse=10.0)
        assert lifted.throughput > 2.0 * capped.throughput

    def test_wire_number_never_reused_within_delay(self, sim):
        from repro.channel.channel import Channel
        from repro.core.messages import DataMessage

        sends = []
        sender = StenningSender(2, 3, reuse_delay=5.0, timeout_period=5.0)
        channel = Channel(sim)
        channel.connect(lambda m: None)
        channel.add_observer(
            lambda kind, m: sends.append((sim.now, m.seq))
            if kind == "send" and isinstance(m, DataMessage)
            else None
        )
        sender.attach(sim, channel)
        receiver_stub = []
        # drive manually: submit whenever allowed, ack everything promptly
        from repro.core.messages import BlockAck

        def pump():
            while sender.can_accept and sender.stats.submitted < 12:
                seq = sender.submit(f"p{sender.stats.submitted}")
                sim.schedule(0.1, sender.on_message, BlockAck(seq % 3, seq % 3))
            if sender.stats.submitted < 12:
                sim.schedule(0.5, pump)

        pump()
        sim.run(max_events=100_000)
        last_use = {}
        for when, wire in sends:
            if wire in last_use:
                assert when - last_use[wire] >= 5.0 - 1e-9
            last_use[wire] = when
