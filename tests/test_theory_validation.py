"""Cross-validate the simulator against closed-form ARQ theory.

These tests drive the full stack into regimes with known textbook
answers and require the measured numbers to match — an end-to-end
calibration of engine, channels, endpoints, and accounting.
"""

import pytest

from repro.analysis.theory import (
    go_back_n_efficiency,
    pipelined_throughput_bound,
    selective_repeat_efficiency,
    stop_and_wait_throughput,
)
from repro.channel.delay import ConstantDelay
from repro.channel.impairments import BernoulliLoss
from repro.protocols.blockack import BlockAckReceiver, BlockAckSender
from repro.protocols.gobackn import GoBackNReceiver, GoBackNSender
from repro.protocols.selective_repeat import (
    SelectiveRepeatReceiver,
    SelectiveRepeatSender,
)
from repro.sim.runner import LinkSpec, run_transfer
from repro.workloads.sources import GreedySource


def data_lossy(p):
    """Loss on the data channel only: matches the theory's assumptions."""
    return LinkSpec(delay=ConstantDelay(1.0), loss=BernoulliLoss(p))


def clean():
    return LinkSpec(delay=ConstantDelay(1.0))


class TestFormulaSanity:
    def test_sr_efficiency_bounds(self):
        assert selective_repeat_efficiency(0.0) == 1.0
        assert selective_repeat_efficiency(0.5) == 0.5

    def test_gbn_efficiency_bounds(self):
        assert go_back_n_efficiency(0.0, 8) == 1.0
        assert go_back_n_efficiency(0.5, 1) == pytest.approx(0.5)
        # large windows amplify the loss penalty
        assert go_back_n_efficiency(0.1, 16) < go_back_n_efficiency(0.1, 4)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            selective_repeat_efficiency(1.0)
        with pytest.raises(ValueError):
            go_back_n_efficiency(0.1, 0)
        with pytest.raises(ValueError):
            stop_and_wait_throughput(0.0, 0.1, 1.0)
        with pytest.raises(ValueError):
            pipelined_throughput_bound(0, 2.0)


class TestSimulatorMatchesTheory:
    @pytest.mark.parametrize("p", [0.02, 0.05, 0.1])
    def test_selective_repeat_efficiency(self, p):
        result = run_transfer(
            SelectiveRepeatSender(8), SelectiveRepeatReceiver(8),
            GreedySource(3000), forward=data_lossy(p), reverse=clean(),
            seed=5, max_time=1_000_000.0,
        )
        assert result.completed and result.in_order
        expected = selective_repeat_efficiency(p)
        assert result.goodput_efficiency == pytest.approx(expected, rel=0.03)

    @pytest.mark.parametrize("p", [0.02, 0.05, 0.1])
    def test_blockack_matches_sr_efficiency(self, p):
        """The paper's protocol shares selective repeat's loss economy."""
        sender = BlockAckSender(8, timeout_mode="per_message_safe")
        receiver = BlockAckReceiver(8)
        result = run_transfer(
            sender, receiver, GreedySource(3000),
            forward=data_lossy(p), reverse=clean(),
            seed=5, max_time=1_000_000.0,
        )
        assert result.completed and result.in_order
        expected = selective_repeat_efficiency(p)
        assert result.goodput_efficiency == pytest.approx(expected, rel=0.03)

    @pytest.mark.parametrize("p,window", [(0.02, 8), (0.05, 8), (0.05, 16)])
    def test_go_back_n_efficiency(self, p, window):
        result = run_transfer(
            GoBackNSender(window), GoBackNReceiver(window),
            GreedySource(3000), forward=data_lossy(p), reverse=clean(),
            seed=5, max_time=2_000_000.0,
        )
        assert result.completed and result.in_order
        expected = go_back_n_efficiency(p, window)
        # GBN's real cost depends on where in the window the loss lands;
        # the classic formula assumes a full window goes back, which our
        # timer-driven sender matches only approximately
        assert result.goodput_efficiency == pytest.approx(expected, rel=0.25)

    def test_stop_and_wait_throughput(self):
        # w=1, explicit timer: theory predicts time per payload exactly
        p = 0.2
        timeout = 5.0
        sender = BlockAckSender(1, timeout_mode="simple", timeout_period=timeout)
        receiver = BlockAckReceiver(1)
        result = run_transfer(
            sender, receiver, GreedySource(1500),
            forward=data_lossy(p), reverse=clean(),
            seed=6, max_time=2_000_000.0,
        )
        assert result.completed and result.in_order
        expected = stop_and_wait_throughput(rtt=2.0, p=p, timeout=timeout)
        assert result.throughput == pytest.approx(expected, rel=0.05)

    @pytest.mark.parametrize("window", [2, 4, 8, 16])
    def test_lossless_pipelining_bound(self, window):
        sender = BlockAckSender(window)
        receiver = BlockAckReceiver(window)
        result = run_transfer(
            sender, receiver, GreedySource(2000),
            forward=clean(), reverse=clean(),
        )
        expected = pipelined_throughput_bound(window, rtt=2.0)
        assert result.throughput == pytest.approx(expected, rel=0.02)
