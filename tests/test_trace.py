"""Tests for the trace facility."""

import json

from repro.sim.engine import Simulator
from repro.trace.events import EventKind, TraceEvent
from repro.trace.recorder import NullRecorder, TraceRecorder, decision_diff


class TestTraceEvent:
    def test_format_singleton(self):
        event = TraceEvent(1.5, "sender", EventKind.SEND_DATA, seq=3)
        assert "send_data" in event.format()
        assert "3" in event.format()

    def test_format_block(self):
        event = TraceEvent(1.5, "receiver", EventKind.SEND_ACK, seq=2, seq_hi=5)
        assert "(2,5)" in event.format()

    def test_decision_key_excludes_detail(self):
        a = TraceEvent(1.0, "sender", EventKind.TIMEOUT, seq=1, detail="x")
        b = TraceEvent(1.0, "sender", EventKind.TIMEOUT, seq=1, detail="y")
        assert a.decision_key() == b.decision_key()

    def test_jsonl_round_trip(self):
        event = TraceEvent(
            2.25, "receiver", EventKind.SEND_ACK, seq=3, seq_hi=7, detail="dup"
        )
        record = json.loads(json.dumps(event.as_record()))
        assert record["type"] == "event"
        assert TraceEvent.from_record(record) == event

    def test_round_trip_preserves_none_fields(self):
        event = TraceEvent(0.0, "channel:SR", EventKind.DROP)
        restored = TraceEvent.from_record(
            json.loads(json.dumps(event.as_record()))
        )
        assert restored == event
        assert restored.seq is None and restored.detail is None

    def test_as_record_stringifies_rich_detail(self):
        event = TraceEvent(
            1.0, "sender", EventKind.NOTE, detail={"not": "json-stable"}
        )
        record = event.as_record()
        assert isinstance(record["detail"], str)
        json.dumps(record)  # must be serialisable as-is


class TestTraceRecorder:
    def test_records_with_current_time(self, sim):
        recorder = TraceRecorder(sim)
        sim.schedule(2.0, recorder.record, "sender", EventKind.SEND_DATA, 0)
        sim.run()
        assert recorder.events[0].time == 2.0

    def test_filter_by_kind(self, sim):
        recorder = TraceRecorder(sim)
        recorder.record("sender", EventKind.SEND_DATA, seq=0)
        recorder.record("receiver", EventKind.RECV_DATA, seq=0)
        assert len(recorder.filter(kind=EventKind.SEND_DATA)) == 1

    def test_filter_by_actor(self, sim):
        recorder = TraceRecorder(sim)
        recorder.record("sender", EventKind.SEND_DATA, seq=0)
        recorder.record("receiver", EventKind.RECV_DATA, seq=0)
        assert len(recorder.filter(actor="receiver")) == 1

    def test_filter_by_predicate(self, sim):
        recorder = TraceRecorder(sim)
        for seq in range(5):
            recorder.record("sender", EventKind.SEND_DATA, seq=seq)
        assert len(recorder.filter(predicate=lambda e: e.seq >= 3)) == 2

    def test_count(self, sim):
        recorder = TraceRecorder(sim)
        recorder.record("sender", EventKind.SEND_DATA, seq=0)
        recorder.record("sender", EventKind.SEND_DATA, seq=1)
        assert recorder.count(EventKind.SEND_DATA) == 2
        assert recorder.count(EventKind.TIMEOUT) == 0

    def test_capacity_cap(self, sim):
        recorder = TraceRecorder(sim, capacity=2)
        for seq in range(5):
            recorder.record("sender", EventKind.SEND_DATA, seq=seq)
        assert len(recorder.events) == 2

    def test_capacity_overflow_is_counted_not_silent(self, sim):
        recorder = TraceRecorder(sim, capacity=2)
        assert recorder.dropped_events == 0
        for seq in range(5):
            recorder.record("sender", EventKind.SEND_DATA, seq=seq)
        assert recorder.dropped_events == 3
        assert "3 event(s) dropped at capacity 2" in recorder.format()

    def test_uncapped_recorder_never_drops(self, sim):
        recorder = TraceRecorder(sim)
        for seq in range(100):
            recorder.record("sender", EventKind.SEND_DATA, seq=seq)
        assert recorder.dropped_events == 0
        assert "dropped" not in recorder.format()

    def test_format_truncation_note(self, sim):
        recorder = TraceRecorder(sim)
        for seq in range(5):
            recorder.record("sender", EventKind.SEND_DATA, seq=seq)
        assert "3 more events" in recorder.format(limit=2)


class TestNullRecorder:
    def test_interface_parity_with_no_storage(self):
        recorder = NullRecorder()
        recorder.record("sender", EventKind.SEND_DATA, seq=0)
        assert recorder.events == []
        assert recorder.count(EventKind.SEND_DATA) == 0
        assert recorder.decision_trace() == []
        assert not recorder.enabled


class TestDecisionDiff:
    def test_identical_traces_empty_diff(self):
        trace = [(1.0, "s", EventKind.SEND_DATA, 0, None)]
        assert decision_diff(trace, list(trace)) == []

    def test_difference_located(self):
        left = [(1.0, "s", EventKind.SEND_DATA, 0, None)]
        right = [(1.0, "s", EventKind.SEND_DATA, 1, None)]
        diff = decision_diff(left, right)
        assert diff and diff[0].startswith("@0")

    def test_length_mismatch_reported(self):
        left = [(1.0, "s", EventKind.SEND_DATA, 0, None)]
        diff = decision_diff(left, left + left)
        assert any("length mismatch" in line for line in diff)

    def test_diff_limit(self):
        left = [(float(i), "s", EventKind.SEND_DATA, 0, None) for i in range(30)]
        right = [(float(i), "s", EventKind.SEND_DATA, 1, None) for i in range(30)]
        assert len(decision_diff(left, right, limit=5)) == 5

    def test_detail_only_differences_are_invisible(self, sim):
        """Traces differing only in detail payloads have equal decision
        traces — detail carries wire encodings, not protocol decisions."""
        left = TraceRecorder(sim)
        right = TraceRecorder(sim)
        for seq in range(4):
            left.record("sender", EventKind.SEND_DATA, seq=seq, detail="raw")
            right.record(
                "sender", EventKind.SEND_DATA, seq=seq, detail={"mod": seq % 2}
            )
        assert decision_diff(left.decision_trace(), right.decision_trace()) == []

    def test_time_only_differences_are_significant(self, sim):
        """Timestamps ARE part of the decision key: E7's equivalence
        claim is that two variants act identically under the *same*
        schedule, so a timing drift is a real behavioural divergence."""
        left = [(1.0, "s", EventKind.SEND_DATA, 0, None)]
        right = [(1.5, "s", EventKind.SEND_DATA, 0, None)]
        diff = decision_diff(left, right)
        assert diff and diff[0].startswith("@0")
