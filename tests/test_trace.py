"""Tests for the trace facility."""

from repro.sim.engine import Simulator
from repro.trace.events import EventKind, TraceEvent
from repro.trace.recorder import NullRecorder, TraceRecorder, decision_diff


class TestTraceEvent:
    def test_format_singleton(self):
        event = TraceEvent(1.5, "sender", EventKind.SEND_DATA, seq=3)
        assert "send_data" in event.format()
        assert "3" in event.format()

    def test_format_block(self):
        event = TraceEvent(1.5, "receiver", EventKind.SEND_ACK, seq=2, seq_hi=5)
        assert "(2,5)" in event.format()

    def test_decision_key_excludes_detail(self):
        a = TraceEvent(1.0, "sender", EventKind.TIMEOUT, seq=1, detail="x")
        b = TraceEvent(1.0, "sender", EventKind.TIMEOUT, seq=1, detail="y")
        assert a.decision_key() == b.decision_key()


class TestTraceRecorder:
    def test_records_with_current_time(self, sim):
        recorder = TraceRecorder(sim)
        sim.schedule(2.0, recorder.record, "sender", EventKind.SEND_DATA, 0)
        sim.run()
        assert recorder.events[0].time == 2.0

    def test_filter_by_kind(self, sim):
        recorder = TraceRecorder(sim)
        recorder.record("sender", EventKind.SEND_DATA, seq=0)
        recorder.record("receiver", EventKind.RECV_DATA, seq=0)
        assert len(recorder.filter(kind=EventKind.SEND_DATA)) == 1

    def test_filter_by_actor(self, sim):
        recorder = TraceRecorder(sim)
        recorder.record("sender", EventKind.SEND_DATA, seq=0)
        recorder.record("receiver", EventKind.RECV_DATA, seq=0)
        assert len(recorder.filter(actor="receiver")) == 1

    def test_filter_by_predicate(self, sim):
        recorder = TraceRecorder(sim)
        for seq in range(5):
            recorder.record("sender", EventKind.SEND_DATA, seq=seq)
        assert len(recorder.filter(predicate=lambda e: e.seq >= 3)) == 2

    def test_count(self, sim):
        recorder = TraceRecorder(sim)
        recorder.record("sender", EventKind.SEND_DATA, seq=0)
        recorder.record("sender", EventKind.SEND_DATA, seq=1)
        assert recorder.count(EventKind.SEND_DATA) == 2
        assert recorder.count(EventKind.TIMEOUT) == 0

    def test_capacity_cap(self, sim):
        recorder = TraceRecorder(sim, capacity=2)
        for seq in range(5):
            recorder.record("sender", EventKind.SEND_DATA, seq=seq)
        assert len(recorder.events) == 2

    def test_format_truncation_note(self, sim):
        recorder = TraceRecorder(sim)
        for seq in range(5):
            recorder.record("sender", EventKind.SEND_DATA, seq=seq)
        assert "3 more events" in recorder.format(limit=2)


class TestNullRecorder:
    def test_interface_parity_with_no_storage(self):
        recorder = NullRecorder()
        recorder.record("sender", EventKind.SEND_DATA, seq=0)
        assert recorder.events == []
        assert recorder.count(EventKind.SEND_DATA) == 0
        assert recorder.decision_trace() == []
        assert not recorder.enabled


class TestDecisionDiff:
    def test_identical_traces_empty_diff(self):
        trace = [(1.0, "s", EventKind.SEND_DATA, 0, None)]
        assert decision_diff(trace, list(trace)) == []

    def test_difference_located(self):
        left = [(1.0, "s", EventKind.SEND_DATA, 0, None)]
        right = [(1.0, "s", EventKind.SEND_DATA, 1, None)]
        diff = decision_diff(left, right)
        assert diff and diff[0].startswith("@0")

    def test_length_mismatch_reported(self):
        left = [(1.0, "s", EventKind.SEND_DATA, 0, None)]
        diff = decision_diff(left, left + left)
        assert any("length mismatch" in line for line in diff)

    def test_diff_limit(self):
        left = [(float(i), "s", EventKind.SEND_DATA, 0, None) for i in range(30)]
        right = [(float(i), "s", EventKind.SEND_DATA, 1, None) for i in range(30)]
        assert len(decision_diff(left, right, limit=5)) == 5
