"""Tests for the realtime scheduler and UDP transport.

Wall-clock tests are kept short and given generous deadlines so they stay
robust on loaded machines; the protocol logic itself is exhaustively
covered by the (deterministic) simulation tests — these verify the
*adapters*: threading discipline, socket plumbing, codec integration.
"""

import threading
import time

import pytest

from repro.core.messages import BlockAck, DataMessage
from repro.transport.clock import RealtimeScheduler
from repro.transport.session import transfer_over_udp
from repro.transport.udp import UdpTransport


class TestRealtimeScheduler:
    def test_schedules_and_runs(self):
        fired = threading.Event()
        with RealtimeScheduler() as clock:
            clock.schedule(0.01, fired.set)
            assert fired.wait(timeout=2.0)

    def test_ordering_of_due_events(self):
        order = []
        done = threading.Event()
        with RealtimeScheduler() as clock:
            clock.schedule(0.03, lambda: (order.append("b"), done.set()))
            clock.schedule(0.01, order.append, "a")
            assert done.wait(timeout=2.0)
        assert order == ["a", "b"]

    def test_cancel_prevents_firing(self):
        fired = threading.Event()
        with RealtimeScheduler() as clock:
            event = clock.schedule(0.05, fired.set)
            event.cancel()
            time.sleep(0.15)
        assert not fired.is_set()

    def test_callbacks_serialized_on_one_thread(self):
        threads = set()
        done = threading.Event()

        def note(last=False):
            threads.add(threading.current_thread().name)
            if last:
                done.set()

        with RealtimeScheduler() as clock:
            for _ in range(20):
                clock.call_soon(note)
            clock.schedule(0.05, note, True)
            assert done.wait(timeout=2.0)
        assert len(threads) == 1

    def test_callback_exception_surfaces_on_stop(self):
        clock = RealtimeScheduler().start()
        clock.call_soon(lambda: 1 / 0)
        time.sleep(0.1)
        assert clock.failed
        with pytest.raises(ZeroDivisionError):
            clock.stop()

    def test_now_advances(self):
        with RealtimeScheduler() as clock:
            before = clock.now
            time.sleep(0.02)
            assert clock.now > before

    def test_negative_delay_rejected(self):
        with RealtimeScheduler() as clock:
            with pytest.raises(ValueError):
                clock.schedule(-1.0, lambda: None)


class TestUdpTransport:
    def test_round_trip_messages(self):
        received = []
        done = threading.Event()
        with RealtimeScheduler() as clock:
            a = UdpTransport(clock)
            b = UdpTransport(clock)
            a.set_remote(b.local_address)
            b.set_remote(a.local_address)
            try:
                b.connect(
                    lambda m: (received.append(m), done.set())
                    if len(received) == 1
                    else received.append(m)
                )
                a.connect(lambda m: None)
                a.send(DataMessage(seq=3, payload=b"ping"))
                a.send(BlockAck(lo=1, hi=2))
                deadline = time.time() + 3.0
                while len(received) < 2 and time.time() < deadline:
                    time.sleep(0.01)
            finally:
                a.close()
                b.close()
        assert DataMessage(seq=3, payload=b"ping") in received
        assert BlockAck(1, 2) in received

    def test_drop_injection(self):
        import random

        with RealtimeScheduler() as clock:
            a = UdpTransport(
                clock, drop_probability=1.0, rng=random.Random(0)
            )
            b = UdpTransport(clock)
            a.set_remote(b.local_address)
            try:
                a.connect(lambda m: None)
                for _ in range(10):
                    a.send(DataMessage(seq=0))
                assert a.dropped == 10
            finally:
                a.close()
                b.close()

    def test_send_without_remote_raises(self):
        with RealtimeScheduler() as clock:
            transport = UdpTransport(clock)
            try:
                with pytest.raises(RuntimeError):
                    transport.send(DataMessage(seq=0))
            finally:
                transport.close()

    def test_invalid_drop_probability(self):
        with RealtimeScheduler() as clock:
            with pytest.raises(ValueError):
                UdpTransport(clock, drop_probability=2.0)


class TestUdpTransfers:
    def test_lossless_transfer(self):
        payloads = [f"m{i:03d}".encode() for i in range(50)]
        stats = transfer_over_udp(payloads, window=8, deadline=15.0, seed=1)
        assert stats.completed
        assert stats.delivered == payloads
        assert stats.retransmissions == 0

    def test_lossy_transfer_exactly_once_in_order(self):
        payloads = [f"m{i:03d}".encode() for i in range(40)]
        stats = transfer_over_udp(
            payloads, window=8, loss=0.15, timeout_period=0.1,
            deadline=25.0, seed=2,
        )
        assert stats.completed
        assert stats.delivered == payloads
        assert stats.retransmissions > 0

    def test_window_one_stop_and_wait(self):
        payloads = [b"a", b"b", b"c"]
        stats = transfer_over_udp(payloads, window=1, deadline=10.0)
        assert stats.completed and stats.delivered == payloads

    def test_non_bytes_payload_rejected(self):
        with pytest.raises(TypeError):
            transfer_over_udp(["not-bytes"])


class TestTransportStats:
    def test_corrupt_frames_counted_not_dispatched(self):
        import socket as socket_module

        received = []
        with RealtimeScheduler() as clock:
            b = UdpTransport(clock)
            try:
                b.connect(received.append)
                # raw garbage straight at the socket: fails frame decode
                probe = socket_module.socket(
                    socket_module.AF_INET, socket_module.SOCK_DGRAM
                )
                try:
                    for _ in range(3):
                        probe.sendto(b"\xff not a frame", b.local_address)
                    deadline = time.time() + 3.0
                    while b.stats.corrupt_frames < 3 and time.time() < deadline:
                        time.sleep(0.01)
                finally:
                    probe.close()
                assert b.stats.corrupt_frames == 3
                assert b.stats.received == 0
                assert received == []
                assert b.undecodable == 3  # back-compat alias
            finally:
                b.close()

    def test_session_exposes_transport_stats(self):
        stats = transfer_over_udp([b"a", b"b", b"c"], seed=1)
        assert stats.completed
        assert stats.sender_transport["sent"] >= 3
        assert stats.receiver_transport["received"] >= 3
        assert set(stats.sender_transport) == {
            "sent", "dropped", "received", "corrupt_frames",
        }
        assert stats.corrupt_frames == 0  # loopback does not corrupt
