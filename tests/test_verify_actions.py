"""Unit tests for the paper's guarded-command actions."""

import pytest

from repro.verify.actions import AbstractProtocolModel
from repro.verify.state import initial_state


def transitions_by_action(model, state):
    result = {}
    for transition in model.transitions(state):
        result.setdefault(transition.action, []).append(transition)
    return result


@pytest.fixture
def model():
    return AbstractProtocolModel(window=2, max_send=4, timeout_mode="simple")


class TestAction0Send:
    def test_enabled_initially(self, model):
        actions = transitions_by_action(model, model.initial())
        assert "0:send" in actions

    def test_send_adds_to_channel_and_advances_ns(self, model):
        target = transitions_by_action(model, model.initial())["0:send"][0].target
        assert target.ns == 1
        assert target.c_sr == (0,)

    def test_disabled_when_window_full(self, model):
        state = initial_state().replace(ns=2, c_sr=(0, 1))
        assert "0:send" not in transitions_by_action(model, state)

    def test_disabled_at_max_send(self, model):
        state = initial_state().replace(
            na=4, ns=4, nr=4, vr=4
        )
        assert "0:send" not in transitions_by_action(model, state)


class TestAction1RecvAck:
    def test_consumes_ack_and_marks(self, model):
        state = initial_state().replace(ns=2, nr=2, vr=2, c_rs=((0, 1),))
        target = transitions_by_action(model, state)["1:recv_ack"][0].target
        assert target.na == 2
        assert target.c_rs == ()

    def test_out_of_order_ack_records_without_advance(self, model):
        state = initial_state().replace(ns=2, nr=2, vr=2, c_rs=((1, 1),))
        target = transitions_by_action(model, state)["1:recv_ack"][0].target
        assert target.na == 0
        assert 1 in target.ackd

    def test_gap_fill_advances_over_recorded(self, model):
        state = initial_state().replace(
            ns=2, nr=2, vr=2, ackd=frozenset({1}), c_rs=((0, 0),)
        )
        target = transitions_by_action(model, state)["1:recv_ack"][0].target
        assert target.na == 2
        assert target.ackd == frozenset()

    def test_identical_acks_collapse_to_one_choice(self, model):
        state = initial_state().replace(ns=2, nr=2, vr=2, c_rs=((0, 0), (0, 0)))
        choices = transitions_by_action(model, state)["1:recv_ack"]
        assert len(choices) == 1


class TestAction2SimpleTimeout:
    def test_enabled_when_stuck(self, model):
        # message 0 lost: outstanding, channels empty, receiver stuck
        state = initial_state().replace(ns=1)
        actions = transitions_by_action(model, state)
        assert "2:timeout" in actions
        assert actions["2:timeout"][0].target.c_sr == (0,)

    def test_disabled_when_data_in_flight(self, model):
        state = initial_state().replace(ns=1, c_sr=(0,))
        assert "2:timeout" not in transitions_by_action(model, state)

    def test_disabled_when_ack_in_flight(self, model):
        state = initial_state().replace(ns=1, nr=1, vr=1, c_rs=((0, 0),))
        assert "2:timeout" not in transitions_by_action(model, state)

    def test_disabled_when_receiver_can_progress(self, model):
        # rcvd[nr] true: receiver will advance vr and ack on its own
        state = initial_state().replace(ns=1, rcvd=frozenset({0}))
        assert "2:timeout" not in transitions_by_action(model, state)

    def test_disabled_when_nothing_outstanding(self, model):
        assert "2:timeout" not in transitions_by_action(model, model.initial())

    def test_enabled_with_buffered_gap(self, model):
        # 0 lost, 1 received and buffered: rcvd[nr=0] false -> timeout fires
        state = initial_state().replace(ns=2, rcvd=frozenset({1}))
        assert "2:timeout" in transitions_by_action(model, state)


class TestAction2PerMessageTimeout:
    @pytest.fixture
    def pm_model(self):
        return AbstractProtocolModel(window=2, max_send=4, timeout_mode="per_message")

    def test_multiple_messages_eligible(self, pm_model):
        state = initial_state().replace(ns=2)  # both 0 and 1 lost
        choices = transitions_by_action(pm_model, state)["2':timeout(i)"]
        resends = {t.target.c_sr for t in choices}
        assert resends == {(0,), (1,)}

    def test_blocked_by_copy_in_flight(self, pm_model):
        state = initial_state().replace(ns=2, c_sr=(1,))
        choices = transitions_by_action(pm_model, state)["2':timeout(i)"]
        assert all(t.target.c_sr != (1, 1) for t in choices)

    def test_blocked_by_covering_ack(self, pm_model):
        state = initial_state().replace(ns=2, nr=2, vr=2, c_rs=((0, 1),))
        assert "2':timeout(i)" not in transitions_by_action(pm_model, state)

    def test_blocked_by_buffered_reception(self, pm_model):
        # 1 is buffered at the receiver (rcvd, not yet acceptable): the
        # guard's (i < nr or not rcvd[i]) conjunct forbids resending 1
        state = initial_state().replace(ns=2, rcvd=frozenset({1}))
        choices = transitions_by_action(pm_model, state)["2':timeout(i)"]
        assert {t.target.c_sr for t in choices} == {(0,)}

    def test_accepted_with_lost_ack_is_eligible(self, pm_model):
        # 0 accepted (nr=1) but its ack was lost: i < nr allows resend
        state = initial_state().replace(ns=1, nr=1, vr=1)
        choices = transitions_by_action(pm_model, state)["2':timeout(i)"]
        assert {t.target.c_sr for t in choices} == {(0,)}


class TestReceiverActions:
    def test_recv_fresh_data_records(self, model):
        state = initial_state().replace(ns=1, c_sr=(0,))
        target = transitions_by_action(model, state)["3:recv_data"][0].target
        assert target.is_rcvd(0)
        assert target.c_sr == ()

    def test_recv_duplicate_sends_singleton_ack(self, model):
        state = initial_state().replace(ns=1, nr=1, vr=1, c_sr=(0,))
        target = transitions_by_action(model, state)["3:recv_data"][0].target
        assert target.c_rs == ((0, 0),)

    def test_advance_vr(self, model):
        state = initial_state().replace(ns=1, rcvd=frozenset({0}))
        target = transitions_by_action(model, state)["4:advance_vr"][0].target
        assert target.vr == 1

    def test_send_ack_emits_block_and_advances_nr(self, model):
        state = initial_state().replace(ns=2, vr=2)
        target = transitions_by_action(model, state)["5:send_ack"][0].target
        assert target.c_rs == ((0, 1),)
        assert target.nr == 2


class TestEnvironment:
    def test_loss_transitions_flagged(self, model):
        state = initial_state().replace(ns=1, c_sr=(0,))
        losses = transitions_by_action(model, state).get("env:lose_data", [])
        assert losses and all(t.is_environment for t in losses)
        assert losses[0].target.c_sr == ()

    def test_no_loss_when_disabled(self):
        model = AbstractProtocolModel(2, 4, allow_loss=False)
        state = initial_state().replace(ns=1, c_sr=(0,))
        assert "env:lose_data" not in transitions_by_action(model, state)

    def test_protocol_transitions_excludes_environment(self, model):
        state = initial_state().replace(ns=1, c_sr=(0,))
        assert all(
            not t.is_environment for t in model.protocol_transitions(state)
        )


class TestFinality:
    def test_final_state_detection(self, model):
        final = initial_state().replace(na=4, ns=4, nr=4, vr=4)
        assert model.is_final(final)
        assert not model.is_final(initial_state())

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AbstractProtocolModel(0, 4)
        with pytest.raises(ValueError):
            AbstractProtocolModel(2, -1)
        with pytest.raises(ValueError):
            AbstractProtocolModel(2, 4, timeout_mode="bogus")
