"""Tests for the explicit-state explorer and randomized walker."""

import random

import pytest

from repro.verify.actions import AbstractProtocolModel
from repro.verify.explorer import Explorer, RandomWalker


class TestExplorer:
    def test_tiny_space_is_clean(self):
        model = AbstractProtocolModel(1, 2, timeout_mode="simple")
        report = Explorer(model).run()
        assert report.ok
        assert report.final_states == 1
        assert report.states_explored > 1

    def test_simple_mode_invariant_holds_with_loss(self):
        model = AbstractProtocolModel(2, 3, timeout_mode="simple", allow_loss=True)
        report = Explorer(model, stop_at_first_violation=False).run()
        assert report.invariant_violations == []
        assert report.deadlocks == []

    def test_per_message_mode_invariant_holds_with_loss(self):
        model = AbstractProtocolModel(
            2, 3, timeout_mode="per_message", allow_loss=True
        )
        report = Explorer(model, stop_at_first_violation=False).run()
        assert report.ok

    def test_impatient_mode_violates_assertion_8(self):
        model = AbstractProtocolModel(2, 3, timeout_mode="impatient")
        report = Explorer(model).run()
        assert report.invariant_violations
        state, clauses = report.invariant_violations[0]
        assert any("8:" in clause for clause in clauses)

    def test_witness_trace_reaches_violation(self):
        model = AbstractProtocolModel(2, 3, timeout_mode="impatient")
        explorer = Explorer(model)
        report = explorer.run()
        state, _ = report.invariant_violations[0]
        trace = explorer.witness(state)
        assert trace[0].startswith("initial")
        assert trace[-1].endswith(state.describe())

    def test_witness_unknown_state_raises(self):
        model = AbstractProtocolModel(1, 1)
        explorer = Explorer(model)
        explorer.run()
        with pytest.raises(KeyError):
            explorer.witness(model.initial().replace(ns=99, nr=99, vr=99, na=99))

    def test_truncation_flagged(self):
        model = AbstractProtocolModel(2, 4)
        report = Explorer(model, max_states=10).run()
        assert report.truncated

    def test_channel_occupancy_bounded_by_invariant(self):
        # assertion 8 gives at most one copy per number: occupancy <= N+some
        model = AbstractProtocolModel(2, 3, timeout_mode="simple")
        report = Explorer(model, stop_at_first_violation=False).run()
        assert report.max_channel_occupancy <= 2 * 3

    def test_no_loss_space_smaller(self):
        with_loss = Explorer(AbstractProtocolModel(2, 3, allow_loss=True)).run()
        without = Explorer(AbstractProtocolModel(2, 3, allow_loss=False)).run()
        assert without.states_explored <= with_loss.states_explored

    def test_summary_format(self):
        report = Explorer(AbstractProtocolModel(1, 1)).run()
        assert "OK" in report.summary()


class TestRandomWalker:
    def test_lossless_walk_completes(self):
        model = AbstractProtocolModel(2, 10, allow_loss=True)
        walker = RandomWalker(
            model, random.Random(1), loss_probability=0.0, loss_budget=0
        )
        report = walker.run()
        assert report.completed
        assert report.invariant_violations == 0

    def test_walk_with_losses_completes(self):
        model = AbstractProtocolModel(2, 10, allow_loss=True)
        walker = RandomWalker(
            model, random.Random(2), loss_probability=0.3, loss_budget=15
        )
        report = walker.run()
        assert report.completed
        assert report.losses_injected > 0

    def test_progress_sum_monotone(self):
        model = AbstractProtocolModel(2, 10, allow_loss=True)
        walker = RandomWalker(model, random.Random(3), loss_budget=10)
        report = walker.run()
        history = report.progress_sum_history
        assert all(b >= a for a, b in zip(history, history[1:]))
        assert report.final_progress_sum == 40  # 4 * max_send

    def test_loss_budget_respected(self):
        model = AbstractProtocolModel(1, 5, allow_loss=True)
        walker = RandomWalker(
            model, random.Random(4), loss_probability=1.0, loss_budget=3
        )
        report = walker.run()
        assert report.losses_injected <= 3
        assert report.completed

    def test_invalid_loss_probability(self):
        model = AbstractProtocolModel(1, 1)
        with pytest.raises(ValueError):
            RandomWalker(model, random.Random(0), loss_probability=1.5)
