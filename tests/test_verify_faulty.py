"""Tests for the deliberately vulnerable go-back-N baseline."""

import pytest

from repro.verify.faulty import NaiveGbnReceiver, NaiveGbnSender, detect_violation


class TestNaiveGbnSender:
    def test_window_discipline(self):
        sender = NaiveGbnSender(window=3, domain=4)
        for _ in range(3):
            sender.send_new()
        assert not sender.can_send
        with pytest.raises(RuntimeError):
            sender.send_new()

    def test_wire_numbers_wrap(self):
        sender = NaiveGbnSender(window=3, domain=4)
        wires = []
        for _ in range(3):
            true_seq, wire = sender.send_new()
            sender.on_cumulative_ack(wire)
            wires.append(wire)
        true_seq, wire = sender.send_new()
        assert (true_seq, wire) == (3, 3)
        sender.on_cumulative_ack(3)
        assert sender.send_new() == (4, 0)  # wrapped

    def test_cumulative_ack_slides_window(self):
        sender = NaiveGbnSender(window=4, domain=5)
        for _ in range(4):
            sender.send_new()
        newly = sender.on_cumulative_ack(2)
        assert newly == [0, 1, 2]
        assert sender.na == 3

    def test_unmatched_ack_ignored(self):
        sender = NaiveGbnSender(window=2, domain=5)
        sender.send_new()
        assert sender.on_cumulative_ack(4) == []
        assert sender.na == 0

    def test_retransmit_all(self):
        sender = NaiveGbnSender(window=3, domain=4)
        for _ in range(3):
            sender.send_new()
        assert sender.retransmit_all() == [(0, 0), (1, 1), (2, 2)]

    def test_domain_floor(self):
        with pytest.raises(ValueError):
            NaiveGbnSender(window=3, domain=3)


class TestNaiveGbnReceiver:
    def test_in_order_accepts(self):
        receiver = NaiveGbnReceiver(domain=4)
        assert receiver.on_data(0) == 0
        assert receiver.on_data(1) == 1
        assert receiver.accepted == [0, 1]

    def test_out_of_order_reacks_last(self):
        receiver = NaiveGbnReceiver(domain=4)
        receiver.on_data(0)
        assert receiver.on_data(2) == 0  # duplicate ack for last accepted
        assert receiver.accepted == [0]

    def test_nothing_accepted_yet_returns_none(self):
        receiver = NaiveGbnReceiver(domain=4)
        assert receiver.on_data(2) is None


class TestViolationDetection:
    def test_phantom_ack_detected(self):
        sender = NaiveGbnSender(window=2, domain=3)
        receiver = NaiveGbnReceiver(domain=3)
        sender.send_new()
        newly = sender.on_cumulative_ack(0)  # receiver never got message 0
        violation = detect_violation(sender, receiver, 0, newly)
        assert violation is not None
        assert violation.phantom_seqs == [0]
        assert "never accepted" in str(violation)

    def test_honest_ack_not_flagged(self):
        sender = NaiveGbnSender(window=2, domain=3)
        receiver = NaiveGbnReceiver(domain=3)
        _, wire = sender.send_new()
        ack = receiver.on_data(wire)
        newly = sender.on_cumulative_ack(ack)
        assert detect_violation(sender, receiver, ack, newly) is None
