"""Unit tests for the paper's invariant assertions 6, 7, 8."""

from repro.verify.invariants import (
    InvariantViolation,
    assertion_6,
    assertion_7,
    assertion_8,
    assertion_9_10_11,
    check_invariant,
    require_invariant,
)
from repro.verify.state import initial_state


class TestAssertion6:
    def test_initial_state_ok(self):
        assert assertion_6(initial_state(), window=2) == []

    def test_na_above_nr_flagged(self):
        state = initial_state().replace(na=2, ns=2, nr=1, vr=1)
        assert any("na" in f for f in assertion_6(state, 4))

    def test_window_overflow_flagged(self):
        state = initial_state().replace(ns=3, nr=0, vr=0)
        assert any("na+w" in f for f in assertion_6(state, 2))

    def test_vr_above_ns_flagged(self):
        state = initial_state().replace(ns=1, nr=1, vr=2)
        failures = assertion_6(state, 4)
        assert any("vr" in f for f in failures)


class TestAssertion7:
    def test_clean_state_ok(self):
        state = initial_state().replace(ns=2, nr=1, vr=1)
        assert assertion_7(state) == []

    def test_ackd_at_or_past_nr_flagged(self):
        state = initial_state().replace(ns=2, nr=1, vr=1, ackd=frozenset({1}))
        assert any("nr" in f for f in assertion_7(state))

    def test_na_past_nr_flags_implicit_prefix(self):
        state = initial_state().replace(na=2, ns=2, nr=1, vr=1)
        assert assertion_7(state)

    def test_rcvd_past_ns_flagged(self):
        state = initial_state().replace(ns=1, rcvd=frozenset({3}))
        assert any("ns" in f for f in assertion_7(state))


class TestAssertion8:
    def test_two_copies_flagged(self):
        state = initial_state().replace(ns=1, c_sr=(0, 0))
        assert any("copies" in f for f in assertion_8(state))

    def test_data_plus_covering_ack_flagged(self):
        state = initial_state().replace(ns=1, nr=1, vr=1, c_sr=(0,), c_rs=((0, 0),))
        assert any("copies" in f for f in assertion_8(state))

    def test_unsent_data_in_flight_flagged(self):
        state = initial_state().replace(ns=1, c_sr=(5,))
        assert assertion_8(state)

    def test_acked_data_in_flight_flagged(self):
        state = initial_state().replace(na=1, ns=2, nr=1, vr=1, c_sr=(0,))
        assert any("ackd" in f for f in assertion_8(state))

    def test_buffered_data_in_flight_flagged(self):
        # rcvd[m] with m >= nr while a copy is in transit
        state = initial_state().replace(ns=2, rcvd=frozenset({1}), c_sr=(1,))
        assert assertion_8(state)

    def test_ack_for_unaccepted_flagged(self):
        state = initial_state().replace(ns=1, c_rs=((0, 0),))
        assert assertion_8(state)

    def test_legitimate_flight_ok(self):
        state = initial_state().replace(ns=2, nr=1, vr=1, c_sr=(1,), c_rs=((0, 0),))
        assert assertion_8(state) == []


class TestDecodeRangeAssertions:
    """Assertions 9-11: the Section V decode preconditions."""

    def test_in_range_ack_ok(self):
        state = initial_state().replace(ns=2, nr=2, vr=2, c_rs=((0, 1),))
        assert assertion_9_10_11(state, window=2) == []

    def test_ack_below_na_flagged(self):
        state = initial_state().replace(na=2, ns=3, nr=2, vr=2, c_rs=((1, 1),))
        assert any("9/10" in f for f in assertion_9_10_11(state, 2))

    def test_ack_beyond_window_flagged(self):
        state = initial_state().replace(ns=4, nr=4, vr=4, c_rs=((0, 3),))
        assert any("9/10" in f for f in assertion_9_10_11(state, 2))

    def test_in_range_data_ok(self):
        state = initial_state().replace(ns=2, c_sr=(0, 1))
        assert assertion_9_10_11(state, window=4) == []

    def test_stale_data_below_receive_window_flagged(self):
        # data 0 in transit while nr has run 5 ahead with w=2: undecodable
        state = initial_state().replace(
            na=5, ns=6, nr=5, vr=5, c_sr=(0,)
        )
        assert any("11" in f for f in assertion_9_10_11(state, 2))

    def test_data_beyond_receive_window_flagged(self):
        state = initial_state().replace(ns=9, nr=0, vr=0, c_sr=(8,))
        assert any("11" in f for f in assertion_9_10_11(state, 2))


class TestCheckInvariant:
    def test_initial_ok(self):
        assert check_invariant(initial_state(), window=2) == []

    def test_aggregates_all_failures(self):
        state = initial_state().replace(ns=5, c_sr=(9, 9))
        failures = check_invariant(state, window=2)
        assert len(failures) >= 2

    def test_require_raises_with_context(self):
        state = initial_state().replace(ns=1, c_sr=(0, 0))
        try:
            require_invariant(state, window=2)
        except InvariantViolation as violation:
            assert violation.state is state
            assert violation.clauses
        else:
            raise AssertionError("expected InvariantViolation")

    def test_require_passes_clean_state(self):
        require_invariant(initial_state(), window=2)  # no raise
