"""Tests for the scripted Section-I scenario replays."""

from repro.verify.scenarios import (
    run_intro_scenario_blockack,
    run_intro_scenario_gbn,
)


class TestGbnScenario:
    def test_violation_occurs(self):
        result = run_intro_scenario_gbn()
        assert result.violation is not None
        assert not result.safe

    def test_sender_belief_exceeds_reality(self):
        result = run_intro_scenario_gbn()
        assert result.sender_believes_delivered > result.receiver_actually_accepted

    def test_phantoms_are_the_second_batch(self):
        result = run_intro_scenario_gbn()
        assert result.violation.phantom_seqs == [6, 7, 8, 9, 10, 11]

    def test_narration_mentions_verdict(self):
        assert "SAFETY VIOLATION" in run_intro_scenario_gbn().narrate()

    def test_scenario_follows_paper_script(self):
        trace = "\n".join(run_intro_scenario_gbn().trace)
        assert "0..5" in trace
        assert "ALL LOST" in trace
        assert "stale ack" in trace


class TestBlockAckScenario:
    def test_same_schedule_is_safe(self):
        result = run_intro_scenario_blockack()
        assert result.safe
        assert result.violation is None

    def test_window_stays_closed_after_reordered_ack(self):
        trace = "\n".join(run_intro_scenario_blockack().trace)
        assert "window still closed" in trace
        assert "can_send = False" in trace

    def test_sender_belief_matches_reality(self):
        result = run_intro_scenario_blockack()
        assert result.sender_believes_delivered == result.receiver_actually_accepted == 6

    def test_narration_mentions_safety(self):
        assert "safe" in run_intro_scenario_blockack().narrate()
