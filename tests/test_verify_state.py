"""Unit tests for abstract system states."""

from repro.verify.state import SystemState, initial_state


class TestInitialState:
    def test_all_zero(self):
        state = initial_state()
        assert (state.na, state.ns, state.nr, state.vr) == (0, 0, 0, 0)
        assert state.c_sr == () and state.c_rs == ()


class TestRecordQueries:
    def test_is_ackd_implicit_prefix(self):
        state = initial_state().replace(na=3, ns=4, nr=3, vr=3)
        assert state.is_ackd(0) and state.is_ackd(2)
        assert not state.is_ackd(3)

    def test_is_ackd_explicit_entry(self):
        state = initial_state().replace(ns=4, nr=4, vr=4, ackd=frozenset({2}))
        assert state.is_ackd(2)
        assert not state.is_ackd(1)

    def test_is_rcvd_implicit_prefix(self):
        state = initial_state().replace(ns=3, nr=2, vr=2)
        assert state.is_rcvd(0) and state.is_rcvd(1)
        assert not state.is_rcvd(2)

    def test_is_rcvd_explicit_entry(self):
        state = initial_state().replace(ns=4, rcvd=frozenset({2}))
        assert state.is_rcvd(2)
        assert not state.is_rcvd(0)


class TestChannelCounts:
    def test_count_sr_multiset(self):
        state = initial_state().replace(ns=3, c_sr=(1, 1, 2))
        assert state.count_sr(1) == 2
        assert state.count_sr(2) == 1
        assert state.count_sr(0) == 0

    def test_count_rs_covers_ranges(self):
        state = initial_state().replace(c_rs=((0, 3), (5, 5)))
        assert state.count_rs(0) == 1
        assert state.count_rs(2) == 1
        assert state.count_rs(4) == 0
        assert state.count_rs(5) == 1

    def test_count_rs_overlapping_pairs(self):
        state = initial_state().replace(c_rs=((0, 3), (2, 4)))
        assert state.count_rs(2) == 2


class TestFunctionalUpdates:
    def test_with_sr_added_sorted(self):
        state = initial_state().with_sr_added(3).with_sr_added(1)
        assert state.c_sr == (1, 3)

    def test_with_sr_removed_one_copy(self):
        state = initial_state().replace(c_sr=(1, 1, 2)).with_sr_removed(1)
        assert state.c_sr == (1, 2)

    def test_with_rs_add_remove(self):
        state = initial_state().with_rs_added((0, 2)).with_rs_added((3, 3))
        assert state.c_rs == ((0, 2), (3, 3))
        assert state.with_rs_removed((0, 2)).c_rs == ((3, 3),)

    def test_replace_canonicalises_records(self):
        state = initial_state().replace(
            na=2, ns=3, nr=2, vr=2, ackd=frozenset({0, 1, 2})
        )
        assert state.ackd == frozenset({2})  # entries below na dropped

    def test_states_are_hashable_values(self):
        a = initial_state().with_sr_added(1)
        b = initial_state().with_sr_added(1)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_describe_is_readable(self):
        text = initial_state().with_sr_added(0).describe()
        assert "C_SR[0]" in text
