"""Unit tests for sender/receiver window bookkeeping."""

import pytest

from repro.core.window import ReceiverWindow, SenderWindow


class TestSenderWindowSending:
    def test_initial_state(self):
        window = SenderWindow(4)
        assert window.na == 0 and window.ns == 0
        assert window.can_send
        assert window.all_acknowledged

    def test_take_next_increments_ns(self):
        window = SenderWindow(4)
        assert window.take_next() == 0
        assert window.take_next() == 1
        assert window.ns == 2

    def test_window_closes_at_w_outstanding(self):
        window = SenderWindow(3)
        for _ in range(3):
            window.take_next()
        assert not window.can_send
        with pytest.raises(RuntimeError):
            window.take_next()

    def test_in_flight_window(self):
        window = SenderWindow(4)
        window.take_next()
        window.take_next()
        assert window.in_flight_window == 2

    def test_invalid_window_size(self):
        with pytest.raises(ValueError):
            SenderWindow(0)


class TestSenderWindowAcks:
    def make_loaded(self, w=4, sent=4):
        window = SenderWindow(w)
        for _ in range(sent):
            window.take_next()
        return window

    def test_prefix_ack_advances_na(self):
        window = self.make_loaded()
        outcome = window.apply_ack(0, 1)
        assert outcome.newly_acked == [0, 1]
        assert window.na == 2
        assert outcome.advanced == 2

    def test_out_of_order_block_does_not_advance(self):
        window = self.make_loaded()
        outcome = window.apply_ack(2, 3)
        assert outcome.newly_acked == [2, 3]
        assert window.na == 0
        assert outcome.advanced == 0

    def test_gap_fill_slides_over_recorded(self):
        window = self.make_loaded()
        window.apply_ack(2, 3)
        outcome = window.apply_ack(0, 1)
        assert window.na == 4
        assert outcome.advanced == 4
        assert window.all_acknowledged

    def test_duplicate_ack_is_stale(self):
        window = self.make_loaded()
        window.apply_ack(0, 0)
        outcome = window.apply_ack(0, 0)
        assert outcome.stale
        assert outcome.newly_acked == []

    def test_partial_overlap_not_stale(self):
        window = self.make_loaded()
        window.apply_ack(0, 1)
        outcome = window.apply_ack(1, 2)
        assert outcome.newly_acked == [2]
        assert not outcome.stale

    def test_ack_below_na_ignored_quietly(self):
        window = self.make_loaded()
        window.apply_ack(0, 2)
        outcome = window.apply_ack(1, 1)
        assert outcome.stale

    def test_ack_beyond_ns_rejected(self):
        window = self.make_loaded(sent=2)
        with pytest.raises(ValueError):
            window.apply_ack(0, 2)

    def test_malformed_pair_rejected(self):
        window = self.make_loaded()
        with pytest.raises(ValueError):
            window.apply_ack(3, 1)

    def test_window_reopens_after_ack(self):
        window = self.make_loaded(w=2, sent=2)
        assert not window.can_send
        window.apply_ack(0, 0)
        assert window.can_send

    def test_is_acked(self):
        window = self.make_loaded()
        window.apply_ack(2, 2)
        assert window.is_acked(2)
        assert not window.is_acked(0)
        window.apply_ack(0, 1)
        assert window.is_acked(0)  # below na now

    def test_outstanding_list(self):
        window = self.make_loaded()
        window.apply_ack(1, 2)
        assert window.outstanding() == [0, 3]

    def test_oldest_outstanding(self):
        window = self.make_loaded()
        assert window.oldest_outstanding == 0
        window.apply_ack(0, 3)
        assert window.oldest_outstanding is None

    def test_invariant_maintained_through_mixed_ops(self):
        window = SenderWindow(4)
        window.check_invariant()
        for _ in range(4):
            window.take_next()
            window.check_invariant()
        window.apply_ack(1, 2)
        window.check_invariant()
        window.apply_ack(0, 0)
        window.check_invariant()
        window.take_next()
        window.check_invariant()


class TestReceiverWindow:
    def test_in_order_accept(self):
        window = ReceiverWindow(4)
        outcome = window.accept(0, "p0")
        assert outcome.recorded
        assert window.advance() == 1
        assert window.vr == 1

    def test_duplicate_below_nr(self):
        window = ReceiverWindow(4)
        window.accept(0)
        window.advance()
        lo, hi, _ = window.take_block()
        assert (lo, hi) == (0, 0)
        outcome = window.accept(0)
        assert outcome.duplicate

    def test_redundant_buffered(self):
        window = ReceiverWindow(4)
        window.accept(2)
        outcome = window.accept(2)
        assert outcome.redundant

    def test_out_of_order_buffering_and_release(self):
        window = ReceiverWindow(4)
        window.accept(1, "p1")
        window.accept(2, "p2")
        assert window.advance() == 0  # gap at 0
        assert not window.ack_ready
        window.accept(0, "p0")
        assert window.advance() == 3
        lo, hi, payloads = window.take_block()
        assert (lo, hi) == (0, 2)
        assert payloads == ["p0", "p1", "p2"]

    def test_take_block_advances_nr(self):
        window = ReceiverWindow(4)
        window.accept(0)
        window.advance()
        window.take_block()
        assert window.nr == 1

    def test_take_block_without_pending_raises(self):
        window = ReceiverWindow(4)
        with pytest.raises(RuntimeError):
            window.take_block()

    def test_received_unaccepted(self):
        window = ReceiverWindow(4)
        window.accept(2)
        window.accept(4)
        assert window.received_unaccepted == [2, 4]

    def test_has_received(self):
        window = ReceiverWindow(4)
        window.accept(0)
        window.accept(3)
        window.advance()
        assert window.has_received(0)  # below vr
        assert window.has_received(3)  # buffered
        assert not window.has_received(1)

    def test_partial_blocks(self):
        window = ReceiverWindow(8)
        window.accept(0)
        window.advance()
        assert window.take_block()[:2] == (0, 0)
        window.accept(1)
        window.accept(2)
        window.advance()
        assert window.take_block()[:2] == (1, 2)

    def test_invariant_maintained(self):
        window = ReceiverWindow(4)
        window.check_invariant()
        window.accept(1)
        window.check_invariant()
        window.accept(0)
        window.advance()
        window.check_invariant()
        window.take_block()
        window.check_invariant()

    def test_invalid_window_size(self):
        with pytest.raises(ValueError):
            ReceiverWindow(0)
