"""Property tests on the shared window core (:mod:`repro.protocols.window_core`).

Two invariants the refactored protocols all inherit from the shared
bookkeeping and must hold under any workload:

* **wrap-around at ``n = 2w``** — with the wire domain fixed at twice
  the window (blockack-bounded by construction, or any protocol run
  under :class:`~repro.core.numbering.ModularNumbering`), transfers
  spanning many domain revolutions still deliver exactly once in order;
* **ack-cursor monotonicity** — the value every protocol feeds
  :meth:`WindowedSender._register_ack` (``stats.acked``) never moves
  backwards, even while wire sequence numbers wrap.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.protocols.registry import make_pair
from repro.protocols.window_core import TIMER_STYLES, WindowedSender
from repro.channel.impairments import BernoulliLoss
from repro.sim.runner import LinkSpec, run_transfer
from repro.workloads.sources import GreedySource

CORE_PROTOCOLS = ("blockack", "gobackn", "selective-repeat")


def _sample_acked(sender):
    """Record every value the protocol feeds the shared ack cursor."""
    samples = []
    original = sender._register_ack

    def recording(newly_acked, acked_value):
        samples.append(acked_value)
        original(newly_acked, acked_value)

    sender._register_ack = recording
    return samples


class TestWrapAround:
    @settings(max_examples=25, deadline=None)
    @given(
        window=st.integers(min_value=2, max_value=8),
        revolutions=st.integers(min_value=3, max_value=8),
        loss=st.sampled_from([0.0, 0.05, 0.15]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_bounded_wire_survives_many_domain_revolutions(
        self, window, revolutions, loss, seed
    ):
        """n = 2w: the transfer outruns the wire domain several times."""
        total = 2 * window * revolutions
        sender, receiver = make_pair("blockack-bounded", window=window)
        assert sender.book.domain.n == 2 * window  # fixed by construction
        result = run_transfer(
            sender, receiver, GreedySource(total),
            forward=LinkSpec(loss=BernoulliLoss(loss)), reverse=LinkSpec(loss=BernoulliLoss(loss)),
            seed=seed, collect_payloads=True, max_time=1_000_000.0,
        )
        assert result.completed and result.in_order
        assert result.delivered_payloads == [("msg", i) for i in range(total)]
        assert result.receiver_stats["delivered"] == total

    @settings(max_examples=15, deadline=None)
    @given(
        protocol=st.sampled_from(CORE_PROTOCOLS),
        window=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_modular_numbering_wrap_for_every_core_protocol(
        self, protocol, window, seed
    ):
        """Any window-core protocol under a 2w wire domain wraps cleanly."""
        total = 2 * window * 4
        sender, receiver = make_pair(protocol, window=window, bounded_wire=True)
        result = run_transfer(
            sender, receiver, GreedySource(total),
            forward=LinkSpec(loss=BernoulliLoss(0.1)), reverse=LinkSpec(loss=BernoulliLoss(0.1)),
            seed=seed, collect_payloads=True, max_time=1_000_000.0,
        )
        assert result.completed and result.in_order
        assert result.delivered_payloads == [("msg", i) for i in range(total)]


class TestAckCursorMonotonicity:
    @settings(max_examples=25, deadline=None)
    @given(
        protocol=st.sampled_from(CORE_PROTOCOLS + ("blockack-bounded",)),
        window=st.integers(min_value=2, max_value=8),
        loss=st.sampled_from([0.0, 0.1, 0.25]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_acked_never_moves_backwards(self, protocol, window, loss, seed):
        sender, receiver = make_pair(protocol, window=window)
        samples = _sample_acked(sender)
        result = run_transfer(
            sender, receiver, GreedySource(4 * window),
            forward=LinkSpec(loss=BernoulliLoss(loss)), reverse=LinkSpec(loss=BernoulliLoss(loss)),
            seed=seed, max_time=1_000_000.0,
        )
        assert result.completed
        assert samples, "transfer completed without a single ack"
        assert all(a <= b for a, b in zip(samples, samples[1:])), samples
        assert sender.stats.acked == samples[-1]


class TestSenderContract:
    def test_timer_styles_are_closed(self):
        # every concrete protocol must pick from the shared set
        for protocol in CORE_PROTOCOLS + ("blockack-bounded",):
            sender, _ = make_pair(protocol, window=4)
            assert isinstance(sender, WindowedSender)
            assert sender.timer_style in TIMER_STYLES

    def test_unknown_timer_style_rejected(self):
        class Broken(WindowedSender):
            timer_style = "psychic"

            def _send_window_open(self):
                return True

            @property
            def all_acknowledged(self):
                return True

            def on_message(self, message):
                pass

        sender = Broken(timeout_period=1.0)
        with pytest.raises(ValueError):
            sender._build_timers()
