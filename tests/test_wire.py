"""Tests for the byte-level wire codec and framed channels."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.channel.channel import Channel
from repro.channel.delay import ConstantDelay, UniformDelay
from repro.core.messages import BlockAck, DataMessage
from repro.core.numbering import ModularNumbering
from repro.protocols.blockack import BlockAckReceiver, BlockAckSender
from repro.sim.runner import LinkSpec, run_transfer
from repro.wire.codec import (
    MAX_WIRE_SEQ,
    CorruptFrame,
    FrameError,
    decode_message,
    encode_message,
    frame_overhead,
)
from repro.wire.framed import FramedChannel
from repro.workloads.sources import GreedySource


class TestCodecRoundTrip:
    def test_data_message(self):
        message = DataMessage(seq=5, payload=b"hello", attempt=2)
        assert decode_message(encode_message(message)) == message

    def test_empty_payload(self):
        message = DataMessage(seq=0, payload=b"")
        decoded = decode_message(encode_message(message))
        assert decoded.payload == b""

    def test_none_payload_becomes_empty(self):
        decoded = decode_message(encode_message(DataMessage(seq=1)))
        assert decoded.payload == b""

    def test_block_ack(self):
        ack = BlockAck(lo=3, hi=9)
        assert decode_message(encode_message(ack)) == ack

    def test_wrapped_ack_pair(self):
        ack = BlockAck(lo=14, hi=1)  # wrapped mod-16 block
        decoded = decode_message(encode_message(ack))
        assert (decoded.lo, decoded.hi) == (14, 1)

    def test_urgent_flag_not_on_wire(self):
        # urgent is endpoint metadata; the wire carries only (lo, hi)
        decoded = decode_message(encode_message(BlockAck(2, 2, urgent=True)))
        assert decoded.urgent is False
        assert decoded == BlockAck(2, 2)  # compare ignores urgent anyway

    def test_overhead_constant(self):
        frame = encode_message(DataMessage(seq=0, payload=b"abcd"))
        assert len(frame) == frame_overhead() + 4

    @given(
        seq=st.integers(min_value=0, max_value=MAX_WIRE_SEQ),
        payload=st.binary(max_size=512),
        attempt=st.integers(min_value=0, max_value=100),
    )
    def test_data_roundtrip_property(self, seq, payload, attempt):
        message = DataMessage(seq=seq, payload=payload, attempt=attempt)
        assert decode_message(encode_message(message)) == message

    @given(
        lo=st.integers(min_value=0, max_value=MAX_WIRE_SEQ),
        hi=st.integers(min_value=0, max_value=MAX_WIRE_SEQ),
    )
    def test_ack_roundtrip_property(self, lo, hi):
        assert decode_message(encode_message(BlockAck(lo, hi))) == BlockAck(lo, hi)


class TestCodecValidation:
    def test_oversized_seq_rejected(self):
        with pytest.raises(FrameError):
            encode_message(DataMessage(seq=MAX_WIRE_SEQ + 1))

    def test_non_bytes_payload_rejected(self):
        with pytest.raises(FrameError):
            encode_message(DataMessage(seq=0, payload=("msg", 1)))

    def test_oversized_payload_rejected(self):
        with pytest.raises(FrameError):
            encode_message(DataMessage(seq=0, payload=b"x" * 70000))

    def test_unframeable_type_rejected(self):
        with pytest.raises(FrameError):
            encode_message("not a message")

    def test_short_frame_rejected(self):
        with pytest.raises(CorruptFrame):
            decode_message(b"tiny")

    def test_crc_catches_single_bit_flip(self):
        frame = bytearray(encode_message(DataMessage(seq=7, payload=b"data")))
        frame[2] ^= 0x10
        with pytest.raises(CorruptFrame):
            decode_message(bytes(frame))

    def test_crc_catches_truncation(self):
        frame = encode_message(DataMessage(seq=7, payload=b"data"))
        with pytest.raises(CorruptFrame):
            decode_message(frame[:-1])

    @given(
        payload=st.binary(min_size=1, max_size=64),
        bit=st.integers(min_value=0),
    )
    def test_any_single_bit_flip_detected(self, payload, bit):
        frame = bytearray(encode_message(DataMessage(seq=3, payload=payload)))
        position = bit % (len(frame) * 8)
        frame[position // 8] ^= 1 << (position % 8)
        with pytest.raises(CorruptFrame):
            decode_message(bytes(frame))

    @given(garbage=st.binary(max_size=256))
    def test_decoder_never_crashes_on_garbage(self, garbage):
        """Fuzz: arbitrary bytes either decode or raise CorruptFrame —
        never any other exception (a CRC collision on random bytes is
        astronomically unlikely but would still be a *clean* decode)."""
        try:
            decode_message(garbage)
        except CorruptFrame:
            pass

    @given(
        payload=st.binary(max_size=64),
        junk=st.binary(min_size=1, max_size=16),
    )
    def test_trailing_junk_detected(self, payload, junk):
        frame = encode_message(DataMessage(seq=1, payload=payload))
        with pytest.raises(CorruptFrame):
            decode_message(frame + junk)


class TestFramedChannel:
    def _make(self, sim, ber=0.0, delay=None):
        inner = Channel(
            sim,
            delay=delay if delay is not None else ConstantDelay(1.0),
            rng=random.Random(1),
        )
        framed = FramedChannel(inner, bit_error_rate=ber, rng=random.Random(2))
        received = []
        framed.connect(received.append)
        return framed, received

    def test_clean_link_delivers_messages(self, sim):
        framed, received = self._make(sim)
        framed.send(DataMessage(seq=1, payload=b"pay"))
        framed.send(BlockAck(lo=0, hi=3))
        sim.run()
        assert received == [DataMessage(seq=1, payload=b"pay"), BlockAck(0, 3)]

    def test_corrupted_frames_discarded(self, sim):
        framed, received = self._make(sim, ber=0.02)  # heavy noise
        for index in range(200):
            framed.send(DataMessage(seq=index % 16, payload=b"x" * 20))
        sim.run()
        assert framed.discarded > 0
        assert len(received) + framed.discarded == 200

    def test_full_noise_kills_everything(self, sim):
        framed, received = self._make(sim, ber=1.0)
        framed.send(DataMessage(seq=0, payload=b"doomed"))
        sim.run()
        assert received == []
        assert framed.discarded == 1

    def test_bytes_accounting(self, sim):
        framed, _ = self._make(sim)
        framed.send(DataMessage(seq=0, payload=b"12345"))
        assert framed.bytes_sent == frame_overhead() + 5

    def test_in_flight_decodes(self, sim):
        framed, _ = self._make(sim, delay=ConstantDelay(5.0))
        framed.send(DataMessage(seq=9, payload=b"q"))
        in_flight = list(framed.in_flight())
        assert in_flight == [DataMessage(seq=9, payload=b"q")]
        assert framed.count_matching(
            lambda m: isinstance(m, DataMessage) and m.seq == 9
        ) == 1

    def test_invalid_ber_rejected(self, sim):
        inner = Channel(sim)
        with pytest.raises(ValueError):
            FramedChannel(inner, bit_error_rate=1.5)

    def test_observer_sees_decoded_messages(self, sim):
        framed, _ = self._make(sim)
        seen = []
        framed.add_observer(lambda kind, m: seen.append((kind, type(m).__name__)))
        framed.send(DataMessage(seq=0, payload=b""))
        sim.run()
        assert ("send", "DataMessage") in seen
        assert ("deliver", "DataMessage") in seen


class _ByteSource(GreedySource):
    def _make_payload(self):
        return f"chunk-{len(self.submitted):05d}".encode()


class TestEndToEndOverNoise:
    def test_protocol_survives_bit_errors(self):
        numbering = ModularNumbering(8)
        sender = BlockAckSender(
            8, numbering=numbering, timeout_mode="per_message_safe"
        )
        receiver = BlockAckReceiver(8, numbering=numbering)
        link = lambda: LinkSpec(
            delay=UniformDelay(0.5, 1.5), bit_error_rate=3e-4
        )
        result = run_transfer(
            sender, receiver, _ByteSource(300),
            forward=link(), reverse=link(), seed=3,
            collect_payloads=True, max_time=1_000_000.0,
        )
        assert result.completed and result.in_order
        assert result.delivered_payloads == [
            f"chunk-{i:05d}".encode() for i in range(300)
        ]
        assert result.sender_stats["retransmissions"] > 0  # noise did bite

    def test_timeout_derivation_through_framing(self):
        sender = BlockAckSender(4)
        receiver = BlockAckReceiver(4)
        result = run_transfer(
            sender, receiver, _ByteSource(20),
            forward=LinkSpec(bit_error_rate=1e-5),
            reverse=LinkSpec(bit_error_rate=1e-5),
            seed=1,
        )
        assert result.completed
        assert result.timeout_period == pytest.approx(2.05)
